"""Tests for the kernel-floor work: fused elementwise chains, the
GEMM-shaped conv2d with slot-plan scratch, and the roofline stamps.

The parity contract is two-tiered, matching how the kernels compose:

* paths sharing ONE conv implementation (numpy vs codegen backend, solo
  vs stacked, bound vs unbound scratch) must agree BYTE-FOR-BYTE;
* the GEMM conv vs the einsum reference agree to float tolerance only
  (BLAS and einsum accumulate float32 sums in different orders).
"""

import threading

import numpy as np
import pytest

from repro.core import smartmem_optimize
from repro.ir import GraphBuilder
from repro.models import SMOKE_CONFIGS, build
from repro.runtime import (
    compile_program, get_backend, lower, make_inputs,
)
from repro.runtime.batching import analyze, rebatch
from repro.runtime.faults import FaultPlan
from repro.runtime.kernels import (
    ConvScratch, bind_conv2d, conv2d_gemm, conv2d_reference, get_kernel,
    layout_convert_elided, use_reference_conv,
)
from repro.runtime.program import _CHAIN_ELEMENTWISE, _CHAIN_OPS
from repro.runtime.session import _compile_session, circuit_breaker
from repro.runtime.traffic import FAMILIES, family, roofline_summary

# ---------------------------------------------------------------------------
# GEMM-shaped conv2d
# ---------------------------------------------------------------------------

#: (x_shape, w_shape, attrs) grid covering stride / padding / dilation /
#: groups, including the ViT-patchify and Conformer-depthwise regimes.
CONV_CASES = [
    ((1, 3, 16, 16), (8, 3, 3, 3), {"stride": 1, "padding": 1}),
    ((2, 4, 9, 9), (6, 4, 3, 3), {"stride": 2, "padding": 0}),
    ((1, 4, 12, 12), (8, 4, 3, 3), {"stride": 1, "padding": 2,
                                    "dilation": 2}),
    ((1, 8, 10, 10), (8, 1, 3, 3), {"groups": 8, "padding": 1}),  # depthwise
    ((1, 6, 8, 8), (12, 3, 1, 1), {"groups": 2}),                 # grouped 1x1
    ((1, 3, 32, 32), (48, 3, 16, 16), {"stride": 16}),            # patchify
    ((2, 5, 7, 11), (10, 5, 2, 4), {"stride": (2, 1),
                                    "padding": (1, 2)}),          # asymmetric
]


def _conv_inputs(x_shape, w_shape, bias, seed=0):
    rng = np.random.default_rng(seed)
    inputs = [rng.standard_normal(x_shape).astype(np.float32),
              rng.standard_normal(w_shape).astype(np.float32)]
    if bias:
        inputs.append(rng.standard_normal(w_shape[0]).astype(np.float32))
    return inputs


@pytest.mark.parametrize("x_shape,w_shape,attrs", CONV_CASES)
@pytest.mark.parametrize("bias", [False, True])
class TestConvGemm:
    def test_matches_einsum_reference_to_tolerance(self, x_shape, w_shape,
                                                   attrs, bias):
        inputs = _conv_inputs(x_shape, w_shape, bias)
        got = conv2d_gemm(inputs, attrs)
        ref = conv2d_reference(inputs, attrs)
        assert got.shape == ref.shape and got.dtype == ref.dtype
        assert np.allclose(ref, got, rtol=1e-3, atol=1e-4)

    def test_bound_scratch_is_byte_identical_and_reusable(self, x_shape,
                                                          w_shape, attrs,
                                                          bias):
        bound, scratch = bind_conv2d(x_shape, w_shape, attrs)
        inputs = _conv_inputs(x_shape, w_shape, bias)
        unbound = conv2d_gemm(inputs, attrs)
        first = bound(inputs, attrs)
        assert np.array_equal(first, unbound)
        # scratch reuse across runs: a different input in between must
        # not leak into a repeated run (the padded halo stays zero)
        bound(_conv_inputs(x_shape, w_shape, bias, seed=7), attrs)
        again = bound(inputs, attrs)
        assert np.array_equal(again, first)

    def test_strided_input_matches_contiguous(self, x_shape, w_shape,
                                              attrs, bias):
        # as_strided im2col must work on non-contiguous inputs (e.g. a
        # transposed or sliced upstream value) byte-for-byte
        inputs = _conv_inputs(x_shape, w_shape, bias)
        n, c, h, w = x_shape
        big = np.zeros((n, c, h, 2 * w), dtype=np.float32)
        big[:, :, :, ::2] = inputs[0]
        strided = big[:, :, :, ::2]
        assert not strided.flags.c_contiguous
        ref = conv2d_gemm(inputs, attrs)
        got = conv2d_gemm([strided] + inputs[1:], attrs)
        assert np.array_equal(got, ref)


class TestConvScratch:
    def test_plan_sizes_padded_and_cols(self):
        scratch = ConvScratch.plan((1, 3, 16, 16), (8, 3, 3, 3),
                                   {"padding": 1})
        assert scratch.pad_shape == (1, 3, 18, 18)
        assert scratch.cols_shape == (1, 27, 256)
        assert scratch.nbytes(4) == 4 * (3 * 18 * 18 + 27 * 256)
        unpadded = ConvScratch.plan((1, 3, 16, 16), (8, 3, 3, 3), {})
        assert unpadded.pad_shape is None
        assert unpadded.nbytes(4) == 4 * 27 * 14 * 14

    def test_buffers_are_thread_local(self):
        scratch = ConvScratch.plan((1, 3, 8, 8), (4, 3, 3, 3),
                                   {"padding": 1})
        mine = scratch.buffers(np.dtype(np.float32))
        seen = {}

        def worker():
            seen["theirs"] = scratch.buffers(np.dtype(np.float32))

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert seen["theirs"][1] is not mine[1]
        # same thread reuses the same buffers
        assert scratch.buffers(np.dtype(np.float32))[1] is mine[1]

    def test_lowering_owns_the_scratch_sizes(self):
        graph = build("ResNet50", **SMOKE_CONFIGS["ResNet50"])
        program = lower(graph)
        conv_bytes = tuple(step.scratch_bytes for step in program.steps
                           if step.op_type == "conv2d")
        assert conv_bytes and all(size > 0 for size in conv_bytes)
        assert program.slot_plan.scratch_sizes == conv_bytes
        assert program.slot_plan.scratch_bytes == sum(conv_bytes)
        non_conv = [step for step in program.steps
                    if step.op_type != "conv2d"]
        assert all(step.scratch_bytes == 0 for step in non_conv)

    def test_reference_flag_reroutes_the_registered_kernel(self):
        inputs = _conv_inputs((1, 3, 8, 8), (4, 3, 3, 3), bias=True)
        attrs = {"padding": 1}
        kernel = get_kernel("conv2d")
        bound, _ = bind_conv2d((1, 3, 8, 8), (4, 3, 3, 3), attrs)
        try:
            use_reference_conv(True)
            want = conv2d_reference(inputs, attrs)
            assert np.array_equal(kernel(inputs, attrs), want)
            # the flag reaches already-lowered programs too
            assert np.array_equal(bound(inputs, attrs), want)
        finally:
            use_reference_conv(False)
        assert np.array_equal(kernel(inputs, attrs),
                              conv2d_gemm(inputs, attrs))


# ---------------------------------------------------------------------------
# fused elementwise chains
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(SMOKE_CONFIGS))
class TestChainParity:
    """numpy and codegen backends agree byte-for-byte on the whole zoo -
    fused chains, GEMM conv, and elided layout_converts included."""

    def test_backends_byte_identical_raw_and_optimized(self, name):
        graph = build(name, **SMOKE_CONFIGS[name])
        numpy_backend = get_backend("numpy")
        codegen_backend = get_backend("codegen")
        for candidate in (graph, smartmem_optimize(graph).graph):
            inputs = {k: v for k, v in make_inputs(graph).items()
                      if k in candidate.tensors}
            program = lower(candidate)
            ref = numpy_backend.run(program, dict(inputs))
            got = codegen_backend.run(program, dict(inputs))
            for key in ref:
                assert np.array_equal(ref[key], got[key]), key

    def test_chain_invariants(self, name):
        graph = build(name, **SMOKE_CONFIGS[name])
        for candidate in (graph, smartmem_optimize(graph).graph):
            program = lower(candidate)
            steps = program.steps
            for chain in program.fused_chains:
                assert list(chain) == list(range(chain[0], chain[-1] + 1))
                assert len(chain) >= 2
                ops = [steps[i].op_type for i in chain]
                assert set(ops) <= _CHAIN_OPS
                assert set(ops) & _CHAIN_ELEMENTWISE
                # every interior feeds exactly the next member
                for i in chain[:-1]:
                    assert steps[i].out_names[0] in steps[i + 1].arg_names
            interiors = program.fused_interiors
            assert len(interiors) == program.fused_step_count
            # interiors are never materialized: no slot, not an output
            for tensor in interiors:
                assert tensor not in program.slot_plan.tensor_slot
                assert tensor not in candidate.outputs


class TestChainCounts:
    def test_codegen_reports_fused_chains_on_vit_and_conformer(self):
        # the CI gate: the kernel-bound models actually get fused.  ViT's
        # chain lives in the framework-lowered (raw) program - the Ours
        # pipeline absorbs its views into input_views; Conformer keeps
        # chains through the full pipeline.
        vit = compile_program(lower(build("ViT", **SMOKE_CONFIGS["ViT"])))
        assert vit.fused_chains > 0 and vit.fused_steps > 0
        conformer_graph = smartmem_optimize(
            build("Conformer", **SMOKE_CONFIGS["Conformer"])).graph
        conformer = compile_program(lower(conformer_graph))
        assert conformer.fused_chains > 0

    def test_fusion_shrinks_the_slot_plan(self):
        # ResNet50's batchnorm->relu chains: every fused interior is one
        # slot acquisition the plan no longer makes
        graph = build("ResNet50", **SMOKE_CONFIGS["ResNet50"])
        program = lower(graph)
        assert program.fused_step_count > 10
        slotted = set(program.slot_plan.tensor_slot)
        assert not slotted & program.fused_interiors


class TestStackedParity:
    @pytest.mark.parametrize("name", ["Pythia", "AutoFormer"])
    def test_codegen_run_batch_matches_solo_numpy(self, name):
        # AutoFormer covers conv-scratch rebinding in batch variants;
        # Pythia covers chains under stacking
        graph = build(name, **SMOKE_CONFIGS[name])
        session = _compile_session(graph, "Ours", backend="codegen")
        reference = _compile_session(graph, "Ours", backend="numpy")
        assert analyze(session.program).stackable
        batch = [session.make_inputs(seed=s) for s in (1, 2, 3, 4)]
        outputs = session.run_batch([dict(b) for b in batch])
        assert all(run.batched for run in session.stats.runs)
        for inputs, out in zip(batch, outputs):
            ref = reference.run(dict(inputs))
            for key in ref:
                assert np.array_equal(out[key], ref[key]), key

    def test_rebatch_scales_stamps_and_scratch(self):
        graph = smartmem_optimize(
            build("AutoFormer", **SMOKE_CONFIGS["AutoFormer"])).graph
        program = lower(graph)
        variant = rebatch(program, 4)
        assert variant.fused_chains == program.fused_chains
        for base, scaled in zip(program.steps, variant.steps):
            assert scaled.bytes_read >= base.bytes_read
            assert scaled.flops >= base.flops
            if base.op_type == "conv2d":
                assert scaled.scratch_bytes == 4 * base.scratch_bytes
        assert variant.slot_plan.scratch_bytes \
            == 4 * program.slot_plan.scratch_bytes


class TestChaosDegradation:
    @pytest.mark.parametrize("chaos_seed", ["17", "20240428"])
    def test_fused_programs_degrade_as_a_unit(self, monkeypatch,
                                              chaos_seed):
        # under ambient chaos (REPRO_FAULT_SEED) a codegen session may
        # degrade to numpy; either way outputs stay byte-identical to
        # the clean reference and fused_steps attribution follows the
        # backend that actually served each request
        monkeypatch.setenv("REPRO_FAULT_SEED", chaos_seed)
        for name in ("Conformer", "AutoFormer"):
            graph = build(name, **SMOKE_CONFIGS[name])
            clean = _compile_session(graph, "Ours", backend="numpy",
                                     faults=FaultPlan(()))
            chaotic = _compile_session(graph, "Ours", backend="codegen")
            assert chaotic.faults is not None
            try:
                for seed in (0, 1, 2):
                    inputs = chaotic.make_inputs(seed=seed)
                    out = chaotic.run(dict(inputs))
                    ref = clean.run(dict(inputs))
                    for key in ref:
                        assert np.array_equal(out[key], ref[key]), key
                for run in chaotic.stats.runs:
                    expected = (chaotic.program.fused_step_count
                                if run.backend == "codegen" else 0)
                    assert run.fused_steps == expected
            finally:
                circuit_breaker().reset()


class TestRunStatsFusedSteps:
    def test_attribution_follows_the_serving_backend(self):
        graph = build("Conformer", **SMOKE_CONFIGS["Conformer"])
        codegen = _compile_session(graph, "Ours", backend="codegen")
        numpy_session = _compile_session(graph, "Ours", backend="numpy")
        assert codegen.program.fused_step_count > 0
        codegen.run(codegen.make_inputs(seed=1))
        numpy_session.run(numpy_session.make_inputs(seed=1))
        assert codegen.stats.runs[-1].fused_steps \
            == codegen.program.fused_step_count
        assert numpy_session.stats.runs[-1].fused_steps == 0


# ---------------------------------------------------------------------------
# roofline stamps
# ---------------------------------------------------------------------------


class TestRooflineStamps:
    def test_steps_are_stamped_at_lowering(self):
        graph = build("Conformer", **SMOKE_CONFIGS["Conformer"])
        program = lower(graph)
        for step in program.steps:
            assert step.bytes_read > 0
            assert step.bytes_written > 0
            if step.op_type in ("conv2d", "matmul", "dense"):
                assert step.flops > 0

    def test_summary_aggregates_per_family(self):
        graph = build("ResNet50", **SMOKE_CONFIGS["ResNet50"])
        program = lower(graph)
        summary = program.roofline()
        assert program.roofline() is summary  # memoized
        assert set(summary) <= set(FAMILIES)
        assert summary["conv"]["flops"] > summary["elementwise"]["flops"]
        for key, entry in summary.items():
            moved = entry["bytes_read"] + entry["bytes_written"]
            count = sum(1 for step in program.steps
                        if family(step.op_type) == key)
            assert entry["steps"] == count
            assert entry["intensity"] \
                == pytest.approx(entry["flops"] / moved, abs=1e-3)
        # the summary is exactly the aggregation of the step stamps
        assert roofline_summary(program.steps) == summary


# ---------------------------------------------------------------------------
# layout_convert copy elision
# ---------------------------------------------------------------------------


def _convert_graph(direct_from_input: bool):
    b = GraphBuilder("convert")
    x = b.input("x", (4, 8))
    src = x if direct_from_input else b.relu(x)
    y = b._emit("layout_convert", [src])
    b.output(b.relu(y))
    return b.finish()


class TestLayoutConvertElision:
    def test_graph_input_is_never_elided(self):
        program = lower(_convert_graph(direct_from_input=True))
        step = next(s for s in program.steps
                    if s.op_type == "layout_convert")
        # the caller's array must never be aliased: reference kernel
        assert step.kernel is not layout_convert_elided

    def test_dying_interior_is_elided_and_byte_identical(self):
        graph = _convert_graph(direct_from_input=False)
        program = lower(graph)
        step = next(s for s in program.steps
                    if s.op_type == "layout_convert")
        assert step.kernel is layout_convert_elided
        inputs = make_inputs(graph)
        ref = get_backend("numpy").run(program, dict(inputs))
        got = get_backend("codegen").run(program, dict(inputs))
        for key in ref:
            assert np.array_equal(ref[key], got[key])

    def test_elided_kernel_passes_contiguous_through(self):
        x = np.arange(12, dtype=np.float32).reshape(3, 4)
        assert layout_convert_elided([x], {}) is x
        strided = x[:, ::2]
        out = layout_convert_elided([strided], {})
        assert out is not strided and out.flags.c_contiguous
        assert np.array_equal(out, strided)
