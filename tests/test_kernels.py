"""Reference-kernel correctness tests against NumPy oracles."""

import numpy as np
import pytest

from repro.runtime.kernels import get_kernel


def run(op, inputs, attrs=None):
    return get_kernel(op)(inputs, attrs or {})


class TestConv:
    def test_identity_kernel(self):
        x = np.random.default_rng(0).standard_normal((1, 3, 5, 5)).astype(np.float32)
        w = np.zeros((3, 3, 1, 1), dtype=np.float32)
        for i in range(3):
            w[i, i, 0, 0] = 1.0
        out = run("conv2d", [x, w], {"kernel": (1, 1)})
        assert np.allclose(out, x)

    def test_sum_kernel(self):
        x = np.ones((1, 2, 4, 4), dtype=np.float32)
        w = np.ones((1, 2, 3, 3), dtype=np.float32)
        out = run("conv2d", [x, w], {"kernel": (3, 3)})
        assert out.shape == (1, 1, 2, 2)
        assert np.allclose(out, 18.0)

    def test_stride_and_padding(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        w = np.ones((1, 1, 1, 1), dtype=np.float32)
        out = run("conv2d", [x, w], {"kernel": (1, 1), "stride": 2})
        assert np.allclose(out[0, 0], x[0, 0, ::2, ::2])

    def test_groups(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((1, 4, 6, 6)).astype(np.float32)
        w = rng.standard_normal((4, 2, 3, 3)).astype(np.float32)
        out = run("conv2d", [x, w], {"kernel": (3, 3), "groups": 2, "padding": 1})
        # group 0 must not see channels 2,3: compare against explicit split
        w0, w1 = w[:2], w[2:]
        o0 = run("conv2d", [x[:, :2], w0], {"kernel": (3, 3), "padding": 1})
        o1 = run("conv2d", [x[:, 2:], w1], {"kernel": (3, 3), "padding": 1})
        assert np.allclose(out, np.concatenate([o0, o1], axis=1), atol=1e-5)

    def test_bias(self):
        x = np.zeros((1, 1, 2, 2), dtype=np.float32)
        w = np.zeros((3, 1, 1, 1), dtype=np.float32)
        b = np.array([1.0, 2.0, 3.0], dtype=np.float32)
        out = run("conv2d", [x, w, b], {"kernel": (1, 1)})
        assert np.allclose(out[0, :, 0, 0], b)

    def test_dilation(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((1, 1, 7, 7)).astype(np.float32)
        w = rng.standard_normal((1, 1, 3, 3)).astype(np.float32)
        out = run("conv2d", [x, w], {"kernel": (3, 3), "dilation": 2})
        # hand-computed single output position
        expected = sum(x[0, 0, dh * 2, dw * 2] * w[0, 0, dh, dw]
                       for dh in range(3) for dw in range(3))
        assert np.allclose(out[0, 0, 0, 0], expected, atol=1e-5)


class TestMatmulDense:
    def test_matmul(self):
        rng = np.random.default_rng(0)
        a, b = rng.standard_normal((3, 4)), rng.standard_normal((4, 5))
        assert np.allclose(run("matmul", [a, b]), a @ b)

    def test_matmul_transposes(self):
        rng = np.random.default_rng(0)
        a, b = rng.standard_normal((4, 3)), rng.standard_normal((5, 4))
        out = run("matmul", [a, b], {"transpose_a": True, "transpose_b": True})
        assert np.allclose(out, a.T @ b.T)

    def test_batched(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((2, 3, 4, 5))
        b = rng.standard_normal((2, 3, 5, 6))
        assert np.allclose(run("matmul", [a, b]), a @ b)

    def test_dense(self):
        rng = np.random.default_rng(0)
        x, w, bias = (rng.standard_normal(s) for s in ((2, 4), (6, 4), (6,)))
        assert np.allclose(run("dense", [x, w, bias]), x @ w.T + bias)


class TestElementwise:
    @pytest.mark.parametrize("func,ref", [
        ("relu", lambda x: np.maximum(x, 0)),
        ("sigmoid", lambda x: 1 / (1 + np.exp(-x))),
        ("tanh", np.tanh),
        ("exp", np.exp),
        ("neg", np.negative),
        ("abs", np.abs),
        ("silu", lambda x: x / (1 + np.exp(-x))),
        ("relu6", lambda x: np.clip(x, 0, 6)),
        ("hardswish", lambda x: x * np.clip(x + 3, 0, 6) / 6),
    ])
    def test_unary(self, func, ref):
        x = np.linspace(-4, 8, 37, dtype=np.float32)
        assert np.allclose(run("unary", [x], {"func": func}), ref(x), atol=1e-5)

    def test_gelu_close_to_erf_form(self):
        import math
        x = np.linspace(-3, 3, 21, dtype=np.float32)
        exact = 0.5 * x * (1 + np.vectorize(math.erf)(x / np.sqrt(2)))
        assert np.allclose(run("unary", [x], {"func": "gelu"}), exact, atol=2e-3)

    @pytest.mark.parametrize("func,ref", [
        ("add", np.add), ("sub", np.subtract), ("mul", np.multiply),
        ("maximum", np.maximum), ("minimum", np.minimum),
    ])
    def test_binary(self, func, ref):
        rng = np.random.default_rng(0)
        a, b = rng.standard_normal((3, 4)), rng.standard_normal((1, 4))
        assert np.allclose(run("binary", [a, b], {"func": func}), ref(a, b))


class TestNorms:
    def test_softmax_rows_sum_to_one(self):
        x = np.random.default_rng(0).standard_normal((4, 7)).astype(np.float32)
        out = run("softmax", [x], {"axis": -1})
        assert np.allclose(out.sum(axis=-1), 1.0, atol=1e-5)
        assert np.all(out >= 0)

    def test_softmax_axis(self):
        x = np.random.default_rng(0).standard_normal((4, 7)).astype(np.float32)
        out = run("softmax", [x], {"axis": 0})
        assert np.allclose(out.sum(axis=0), 1.0, atol=1e-5)

    def test_layernorm_stats(self):
        x = np.random.default_rng(0).standard_normal((3, 8)).astype(np.float32)
        out = run("layernorm", [x], {"axes": -1, "eps": 0.0})
        assert np.allclose(out.mean(axis=-1), 0, atol=1e-5)
        assert np.allclose(out.std(axis=-1), 1, atol=1e-3)

    def test_layernorm_affine(self):
        x = np.random.default_rng(0).standard_normal((3, 8)).astype(np.float32)
        g = np.full(8, 2.0, dtype=np.float32)
        bias = np.full(8, 1.0, dtype=np.float32)
        base = run("layernorm", [x], {"axes": -1})
        out = run("layernorm", [x, g, bias], {"axes": -1})
        assert np.allclose(out, base * 2 + 1, atol=1e-5)

    def test_rmsnorm(self):
        x = np.random.default_rng(0).standard_normal((3, 8)).astype(np.float32)
        gamma = np.ones(8, dtype=np.float32)
        out = run("rmsnorm", [x, gamma], {"axes": -1, "eps": 0.0})
        expected = x / np.sqrt((x ** 2).mean(-1, keepdims=True))
        assert np.allclose(out, expected, atol=1e-4)

    def test_instancenorm(self):
        x = np.random.default_rng(0).standard_normal((2, 3, 4, 4)).astype(np.float32)
        out = run("instancenorm", [x], {"eps": 0.0})
        assert np.allclose(out.mean(axis=(2, 3)), 0, atol=1e-5)

    def test_groupnorm_groups(self):
        x = np.random.default_rng(0).standard_normal((1, 4, 4, 4)).astype(np.float32)
        out = run("groupnorm", [x], {"groups": 2, "eps": 0.0})
        grouped = out.reshape(1, 2, 2, 4, 4)
        assert np.allclose(grouped.mean(axis=(2, 3, 4)), 0, atol=1e-5)

    def test_batchnorm_folded(self):
        x = np.random.default_rng(0).standard_normal((1, 3, 2, 2)).astype(np.float32)
        g = np.array([1.0, 2.0, 3.0], dtype=np.float32)
        bias = np.array([0.0, 1.0, -1.0], dtype=np.float32)
        out = run("batchnorm", [x, g, bias])
        assert np.allclose(out, x * g.reshape(1, 3, 1, 1) + bias.reshape(1, 3, 1, 1))


class TestMovement:
    def test_reshape_transpose(self):
        x = np.arange(24).reshape(2, 3, 4)
        assert np.array_equal(run("reshape", [x], {"shape": (6, 4)}), x.reshape(6, 4))
        assert np.array_equal(run("transpose", [x], {"perm": (2, 0, 1)}),
                              x.transpose(2, 0, 1))

    def test_layout_convert_is_identity(self):
        x = np.arange(6).reshape(2, 3)
        out = run("layout_convert", [x])
        assert np.array_equal(out, x)
        assert out is not x  # physically copies

    def test_slice(self):
        x = np.arange(24).reshape(4, 6)
        out = run("slice", [x], {"starts": (1, 0), "stops": (3, 6), "steps": (1, 2)})
        assert np.array_equal(out, x[1:3, ::2])

    def test_gather(self):
        x = np.arange(20).reshape(5, 4)
        out = run("gather", [x], {"axis": 0, "indices": (3, 1)})
        assert np.array_equal(out, x[[3, 1]])

    def test_concat_pad(self):
        a, b = np.ones((2, 2)), np.zeros((2, 3))
        assert run("concat", [a, b], {"axis": 1}).shape == (2, 5)
        out = run("pad", [a], {"pads": ((1, 0), (0, 1))})
        assert out.shape == (3, 3)
        assert out[0].sum() == 0

    def test_d2s_s2d_roundtrip(self):
        x = np.arange(32, dtype=np.float32).reshape(1, 8, 2, 2)
        d = run("depth_to_space", [x], {"block": 2})
        assert d.shape == (1, 2, 4, 4)
        back = run("space_to_depth", [d], {"block": 2})
        assert np.array_equal(back, x)


class TestPoolingEtc:
    def test_maxpool(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = run("maxpool2d", [x], {"kernel": 2, "stride": 2})
        assert np.array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_avgpool(self):
        x = np.ones((1, 1, 4, 4), dtype=np.float32)
        out = run("avgpool2d", [x], {"kernel": 2, "stride": 2})
        assert np.allclose(out, 1.0)

    def test_maxpool_padding_uses_neg_inf(self):
        x = -np.ones((1, 1, 2, 2), dtype=np.float32)
        out = run("maxpool2d", [x], {"kernel": 3, "stride": 1, "padding": 1})
        assert out.max() == -1.0  # padding never wins

    def test_global_avgpool(self):
        x = np.arange(8, dtype=np.float32).reshape(1, 2, 2, 2)
        out = run("global_avgpool", [x])
        assert np.allclose(out[0, :, 0, 0], [1.5, 5.5])

    def test_upsample_nearest(self):
        x = np.array([[[[1, 2], [3, 4]]]], dtype=np.float32)
        out = run("upsample2d", [x], {"scale": 2})
        assert np.array_equal(out[0, 0, :2, :2], [[1, 1], [1, 1]])

    def test_reduce(self):
        x = np.arange(12, dtype=np.float32).reshape(3, 4)
        assert np.allclose(run("reduce_mean", [x], {"axes": (1,)}), x.mean(1))
        assert np.allclose(run("reduce_sum", [x], {"axes": (0,), "keepdims": True}),
                           x.sum(0, keepdims=True))
        assert np.allclose(run("reduce_max", [x], {}), [x.max()])

    def test_embedding(self):
        table = np.arange(12, dtype=np.float32).reshape(4, 3)
        ids = np.array([[0, 2], [3, 3]], dtype=np.int32)
        out = run("embedding", [table, ids])
        assert out.shape == (2, 2, 3)
        assert np.array_equal(out[0, 1], table[2])

    def test_unknown_kernel(self):
        with pytest.raises(KeyError):
            get_kernel("teleport")
