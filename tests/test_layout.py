"""Tests for repro.ir.layout: buffer strides, texture geometry, fast dims."""

import pytest
from hypothesis import given, strategies as st

from repro.ir.layout import Layout, MemoryKind, TEXTURE_VECTOR_WIDTH


class TestBufferLayout:
    def test_row_major_strides(self):
        layout = Layout.row_major(3)
        assert layout.strides((2, 3, 4)) == (12, 4, 1)

    def test_permuted_strides(self):
        # physical order (2, 0, 1): dim2 outermost, dim1 innermost
        layout = Layout.buffer((2, 0, 1))
        assert layout.strides((2, 3, 4)) == (3, 1, 6)

    def test_innermost(self):
        assert Layout.buffer((0, 2, 1)).innermost_dim == 1

    def test_unit_stride(self):
        layout = Layout.buffer((1, 0))
        assert layout.is_unit_stride(0)
        assert not layout.is_unit_stride(1)

    def test_fast_dims_buffer(self):
        assert Layout.buffer((0, 1, 2)).fast_dims() == (2,)

    def test_invalid_perm(self):
        with pytest.raises(ValueError):
            Layout.buffer((0, 0, 1))

    def test_vector_dim_requires_texture(self):
        with pytest.raises(ValueError):
            Layout(dim_order=(0, 1), vector_dim=0)


class TestTextureLayout:
    def test_requires_vector_dim(self):
        with pytest.raises(ValueError):
            Layout(dim_order=(0, 1), memory=MemoryKind.TEXTURE_2D5)

    def test_fast_dims_two(self):
        layout = Layout.texture((0, 1, 2), vector_dim=1)
        assert set(layout.fast_dims()) == {1, 2}

    def test_fast_dims_dedup(self):
        layout = Layout.texture((0, 1, 2), vector_dim=2)
        assert layout.fast_dims() == (2,)

    def test_texel_count_pads_vector(self):
        layout = Layout.texture((0, 1), vector_dim=1)
        # 6 elements along the vector dim pack into ceil(6/4)=2 texels per row
        assert layout.texel_count((3, 6)) == 6

    def test_texture_extent(self):
        layout = Layout.texture((0, 1, 2), vector_dim=2, num_width_dims=1)
        width, height = layout.texture_extent((2, 3, 8))
        assert width == 3      # innermost non-vector dim
        assert height == 2

    def test_extent_rank_mismatch(self):
        layout = Layout.texture((0, 1), vector_dim=1)
        with pytest.raises(ValueError):
            layout.texture_extent((2, 3, 4))

    def test_buffer_rejects_texture_queries(self):
        with pytest.raises(ValueError):
            Layout.row_major(2).texel_count((2, 2))


class TestPermuted:
    def test_transpose_tracking(self):
        # data stored row-major for shape (A, B); after logical transpose
        # the same bytes serve the transposed tensor with swapped order
        layout = Layout.row_major(2)
        transposed = layout.permuted((1, 0))
        assert transposed.dim_order == (1, 0)

    def test_permuted_keeps_memory_kind(self):
        layout = Layout.texture((0, 1, 2), vector_dim=2)
        out = layout.permuted((2, 0, 1))
        assert out.memory is MemoryKind.TEXTURE_2D5
        # old dim 2 is new dim 0
        assert out.vector_dim == 0

    @given(st.permutations(range(4)))
    def test_permuted_is_consistent(self, perm):
        perm = tuple(perm)
        layout = Layout.row_major(4)
        out = layout.permuted(perm)
        assert sorted(out.dim_order) == [0, 1, 2, 3]


class TestJson:
    def test_roundtrip_buffer(self):
        layout = Layout.buffer((1, 0, 2))
        assert Layout.from_json(layout.to_json()) == layout

    def test_roundtrip_texture(self):
        layout = Layout.texture((2, 0, 1), vector_dim=0, num_width_dims=2)
        assert Layout.from_json(layout.to_json()) == layout


@given(st.integers(1, 5).flatmap(
    lambda r: st.tuples(st.permutations(range(r)),
                        st.lists(st.integers(1, 6), min_size=r, max_size=r))))
def test_strides_are_a_bijection(perm_shape):
    """Every element address is unique under any permutation layout."""
    perm, shape = tuple(perm_shape[0]), tuple(perm_shape[1])
    layout = Layout.buffer(perm)
    strides = layout.strides(shape)
    seen = set()
    import itertools
    for coords in itertools.product(*(range(d) for d in shape)):
        addr = sum(c * s for c, s in zip(coords, strides))
        assert addr not in seen
        seen.add(addr)
    import math
    assert len(seen) == math.prod(shape)
