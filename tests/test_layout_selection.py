"""Tests for reduction-dimension layout selection (Sec 3.2.2)."""

import pytest

from repro.core import (
    consumer_preferences, default_plan, eliminate_layout_transforms,
    select_layouts,
)
from repro.ir import GraphBuilder, Layout, MemoryKind


class TestConsumerPreferences:
    def test_matmul_prefs(self):
        b = GraphBuilder()
        a = b.input("a", (4, 8))
        c = b.input("c", (8, 16))
        out = b.matmul(a, c)
        g = b.finish()
        node = g.producer(out)
        assert consumer_preferences(g, node, 0) == [1]  # K of A
        assert consumer_preferences(g, node, 1) == [0]  # K of B

    def test_elementwise_no_prefs(self):
        b = GraphBuilder()
        x = b.input("x", (4, 8))
        out = b.relu(x)
        g = b.finish()
        assert consumer_preferences(g, g.producer(out), 0) == []

    def test_prefs_translate_through_view(self):
        """After eliminating a transpose, a consumer's reduction dim maps
        back to the *stored* tensor's dims through the view."""
        b = GraphBuilder()
        x = b.input("x", (8, 4))
        t = b.transpose(x, (1, 0))        # (4, 8)
        out = b.softmax(t, axis=-1)       # reduces over the 8-dim
        g = b.finish()
        eliminate_layout_transforms(g)
        node = g.producer(out)
        assert node.inputs[0] == "x"
        # softmax reduces view-dim 1, which is stored dim 0 of x
        assert consumer_preferences(g, node, 0) == [0]


class TestSelectLayouts:
    def test_reduction_dim_unit_stride(self):
        b = GraphBuilder()
        x = b.input("x", (16, 32))
        w = b.input("w", (32, 8))
        out = b.matmul(x, w)
        g = b.finish()
        plan = select_layouts(g, use_texture=False)
        # x's consumer (matmul) reduces dim 1 -> stored innermost
        assert plan.layouts["x"].innermost_dim == 1
        # w's reduction dim is 0
        assert plan.layouts["w"].innermost_dim == 0

    def test_texture_covers_two_dims(self, multi_consumer_graph):
        g = multi_consumer_graph
        plan = select_layouts(g, use_texture=True)
        y = g.producer(g.outputs[0]).inputs[0]
        layout = plan.layouts[y]
        assert layout.memory is MemoryKind.TEXTURE_2D5
        fast = set(layout.fast_dims())
        # the two most-demanded reduction dims are directly accessible
        assert {1, 2} & fast == fast or len(fast) == 2

    def test_buffer_mode_single_dim(self, multi_consumer_graph):
        g = multi_consumer_graph
        plan = select_layouts(g, use_texture=False)
        y = g.producer(g.outputs[0]).inputs[0]
        # with k=1, serving both dims 1 and 2 demands a redundant copy
        assert plan.num_copies >= 1

    def test_copy_assignment(self, multi_consumer_graph):
        g = multi_consumer_graph
        plan = select_layouts(g, use_texture=False)
        y = g.producer(g.outputs[0]).inputs[0]
        for (cid, idx), copy_idx in plan.edge_assignment.items():
            layout = plan.copies[y][copy_idx]
            node = g.nodes[cid]
            prefs = consumer_preferences(g, node, idx)
            assert layout.is_unit_stride(prefs[0])

    def test_quality_flag(self):
        b = GraphBuilder()
        x = b.input("x", (4, 4))
        b.output(b.relu(x))
        g = b.finish()
        assert select_layouts(g).quality == "selected"
        assert default_plan(g).quality == "default"

    def test_texture_rank_min(self, multi_consumer_graph):
        g = multi_consumer_graph
        plan = select_layouts(g, use_texture=True, texture_rank_min=4)
        # all tensors are rank <= 3: nothing becomes a texture
        assert all(l.memory is MemoryKind.BUFFER_1D
                   for l in plan.layouts.values())

    def test_annotates_graph(self, attention_graph):
        plan = select_layouts(attention_graph)
        assert attention_graph.tensor_layouts == plan.layouts

    def test_layout_for_edge_default(self):
        b = GraphBuilder()
        x = b.input("x", (4, 4))
        out = b.relu(x)
        b.output(out)
        g = b.finish()
        plan = select_layouts(g)
        assert plan.layout_for_edge("x", "nonexistent", 0) == plan.layouts["x"]


class TestDefaultPlan:
    def test_4d_gets_channel_texture(self, conv_net_graph):
        plan = default_plan(conv_net_graph, use_texture=True)
        conv_out = next(n for n in conv_net_graph.iter_nodes()
                        if n.op_type == "conv2d").outputs[0]
        layout = plan.layouts[conv_out]
        assert layout.memory is MemoryKind.TEXTURE_2D5
        assert layout.vector_dim == 1  # NC4HW4-style channel packing

    def test_non4d_row_major(self, attention_graph):
        plan = default_plan(attention_graph, use_texture=True)
        for name, layout in plan.layouts.items():
            if len(attention_graph.shape(name)) != 4:
                assert layout == Layout.row_major(len(attention_graph.shape(name)))

    def test_no_texture_device(self, conv_net_graph):
        plan = default_plan(conv_net_graph, use_texture=False)
        assert all(l.memory is MemoryKind.BUFFER_1D
                   for l in plan.layouts.values())
