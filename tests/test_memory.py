"""Tests for the memory substrate: cache simulator, addressing, pool."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import default_plan, fuse, SMARTMEM_POLICY, select_layouts
from repro.ir import Layout
from repro.memory import (
    MemoryPool, SetAssociativeCache, TensorStorage, simulate_pool, traversal,
)


class TestCache:
    def test_cold_miss(self):
        cache = SetAssociativeCache(1024, 64)
        assert cache.access(0) is False
        assert cache.access(0) is True

    def test_line_granularity(self):
        cache = SetAssociativeCache(1024, 64)
        cache.access(0)
        assert cache.access(63) is True   # same line
        assert cache.access(64) is False  # next line

    def test_lru_eviction(self):
        cache = SetAssociativeCache(size_bytes=2 * 64 * 1, line_bytes=64,
                                    associativity=2)  # 1 set, 2 ways
        cache.access(0)
        cache.access(64)
        cache.access(128)          # evicts line 0 (LRU)
        assert cache.access(64) is True
        assert cache.access(0) is False

    def test_lru_refresh(self):
        cache = SetAssociativeCache(2 * 64, 64, associativity=2)
        cache.access(0)
        cache.access(64)
        cache.access(0)            # refresh line 0
        cache.access(128)          # evicts 64 now
        assert cache.access(0) is True
        assert cache.access(64) is False

    def test_sets_isolate(self):
        cache = SetAssociativeCache(4 * 64, 64, associativity=1)  # 4 sets
        cache.access(0)
        cache.access(64)           # different set
        assert cache.access(0) is True

    def test_stats(self):
        cache = SetAssociativeCache(1024, 64)
        cache.access_all([0, 0, 64, 64, 0])
        assert cache.stats.accesses == 5
        assert cache.stats.misses == 2
        assert cache.stats.hits == 3
        assert cache.stats.miss_rate == pytest.approx(0.4)

    def test_reset(self):
        cache = SetAssociativeCache(1024, 64)
        cache.access(0)
        cache.reset()
        assert cache.stats.accesses == 0
        assert cache.access(0) is False

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(100, 64)

    def test_sequential_beats_strided(self):
        """The reason layout selection works, in one assertion."""
        n = 4096
        seq = SetAssociativeCache(1024, 64)
        seq.access_all(range(0, n * 2, 2))            # unit-stride fp16
        strided = SetAssociativeCache(1024, 64)
        strided.access_all((i * 128) % (n * 2) for i in range(n))
        assert seq.stats.misses < strided.stats.misses


class TestAddressing:
    def test_buffer_row_major(self):
        s = TensorStorage((2, 3), Layout.row_major(2), 2)
        assert s.address_of((0, 0)) == 0
        assert s.address_of((0, 1)) == 2
        assert s.address_of((1, 0)) == 6

    def test_buffer_column_major(self):
        s = TensorStorage((2, 3), Layout.buffer((1, 0)), 2)
        assert s.address_of((1, 0)) == 2

    def test_base_address(self):
        s = TensorStorage((2, 2), Layout.row_major(2), 4, base_address=100)
        assert s.address_of((0, 0)) == 100

    def test_out_of_bounds(self):
        s = TensorStorage((2, 2), Layout.row_major(2), 2)
        with pytest.raises(ValueError):
            s.address_of((2, 0))

    def test_texture_vector_packing(self):
        layout = Layout.texture((0, 1), vector_dim=1)
        s = TensorStorage((2, 8), layout, 2)
        # elements 0..3 of a row share one texel
        base = s.address_of((0, 0))
        assert s.address_of((0, 1)) == base + 2
        assert s.address_of((0, 3)) == base + 6
        # element 4 starts the next texel
        assert s.address_of((0, 4)) == base + 8

    def test_texture_addresses_unique(self):
        layout = Layout.texture((0, 1, 2), vector_dim=2)
        s = TensorStorage((2, 3, 5), layout, 2)
        seen = set()
        for coords in traversal((2, 3, 5), (0, 1, 2)):
            addr = s.address_of(coords)
            assert addr not in seen
            seen.add(addr)

    def test_texture_size_includes_padding(self):
        layout = Layout.texture((0, 1), vector_dim=1)
        s = TensorStorage((2, 6), layout, 2)
        # 6 -> 2 texels per row -> 2*2*4 elements * 2 bytes
        assert s.size_bytes() == 32

    def test_traversal_orders(self):
        coords = list(traversal((2, 2), (1, 0)))
        assert coords == [(0, 0), (1, 0), (0, 1), (1, 1)]

    def test_traversal_invalid(self):
        with pytest.raises(ValueError):
            list(traversal((2, 2), (0, 0)))

    @given(st.permutations(range(3)))
    @settings(max_examples=10, deadline=None)
    def test_buffer_bijection(self, perm):
        layout = Layout.buffer(tuple(perm))
        s = TensorStorage((3, 4, 5), layout, 2)
        addrs = {s.address_of(c) for c in traversal((3, 4, 5), (0, 1, 2))}
        assert len(addrs) == 60


class TestPool:
    def test_reuse(self):
        pool = MemoryPool()
        pool.allocate(100)
        pool.release(100)
        pool.allocate(80)
        assert pool.reuses == 1
        assert pool.allocations == 1

    def test_peak(self):
        pool = MemoryPool()
        pool.allocate(100)
        pool.allocate(50)
        pool.release(100)
        pool.allocate(30)
        assert pool.peak_bytes == 150

    def test_best_fit_splits(self):
        pool = MemoryPool()
        pool.allocate(100)
        pool.release(100)
        pool.allocate(40)
        pool.allocate(60)
        assert pool.allocations == 1  # both served from the freed block

    def test_simulate_pool_basic(self, linear_graph):
        for i, node in enumerate(linear_graph.iter_nodes()):
            node.group = i
        report = simulate_pool(linear_graph)
        assert report.peak_bytes > 0
        assert report.reuses > 0

    def test_pool_ignores_fused_internals(self, attention_graph):
        g1 = attention_graph.clone()
        for i, node in enumerate(g1.iter_nodes()):
            node.group = i
        unfused = simulate_pool(g1)
        g2 = attention_graph.clone()
        fuse(g2, SMARTMEM_POLICY)
        fused = simulate_pool(g2)
        assert fused.total_allocated_bytes < unfused.total_allocated_bytes

    def test_copies_tracked(self, multi_consumer_graph):
        g = multi_consumer_graph
        for i, node in enumerate(g.iter_nodes()):
            node.group = i
        plan = select_layouts(g, use_texture=False)
        assert plan.num_copies >= 1
        report = simulate_pool(g, plan)
        assert report.peak_copy_bytes > 0
