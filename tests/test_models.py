"""Tests for the model zoo: structure, scale fidelity, and executability."""

import pytest

from repro.core import count_layout_transforms, smartmem_optimize
from repro.ir import validate
from repro.models import (
    ALL_MODELS, EVAL_MODELS, SMOKE_CONFIGS, TABLE1_MODELS, build, model_names,
)
from repro.runtime import outputs_equal


class TestCatalog:
    def test_eighteen_eval_models(self):
        assert len(EVAL_MODELS) == 18

    def test_table1_extras(self):
        assert set(TABLE1_MODELS) == {"ResNet50", "FST"}

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            build("AlexNet")

    def test_model_names(self):
        assert len(model_names()) == 18
        assert len(model_names(eval_only=False)) == 20

    def test_type_metadata(self):
        types = {info.model_type for info in EVAL_MODELS.values()}
        assert types == {"Transformer", "ConvNet", "Hybrid"}
        assert EVAL_MODELS["Pythia"].attention == "Decoder"
        assert EVAL_MODELS["ViT"].attention == "Global"
        assert EVAL_MODELS["Swin"].attention == "Local"


@pytest.mark.parametrize("name", sorted(ALL_MODELS))
class TestEveryModel:
    def test_builds_and_validates(self, name):
        g = build(name)
        validate(g)

    def test_deterministic_build(self, name):
        a, b = build(name), build(name)
        assert len(a.nodes) == len(b.nodes)
        assert a.num_params == b.num_params

    def test_has_transform_surface(self, name):
        """Every transformer/hybrid model must contain the explicit
        layout transformations the paper studies."""
        g = build(name)
        info = ALL_MODELS[name]
        transforms = count_layout_transforms(g, include_slice=False)
        if info.model_type in ("Transformer", "Hybrid"):
            assert transforms > 10, f"{name} has only {transforms} transforms"


# Published scale targets: (params_M, macs_G) from Tables 1 and 7, with
# generous tolerance: family-level fidelity, not checkpoint equality.
SCALE = {
    "AutoFormer": (31.2, 4.7), "BiFormer": (25.5, 4.5),
    "CrossFormer": (31, 5.0), "CSwin": (34.7, 6.9),
    "EfficientVit": (51, 5.2), "FlattenFormer": (37.3, 7.2),
    "SMTFormer": (22.5, 4.9), "Swin": (28.9, 4.6), "ViT": (102.8, 21),
    "Conformer": (10, 12), "SD-TextEncoder": (123, 6.7),
    "SD-UNet": (860, 90), "SD-VAEDecoder": (50, 312), "Pythia": (1121, 119),
    "ConvNext": (28.6, 4.5), "RegNet": (19.4, 3.2), "ResNext": (25, 4.3),
    "Yolo-V8": (3.2, 4.4), "ResNet50": (25.6, 4.1), "FST": (1.7, 162),
}


@pytest.mark.parametrize("name", sorted(SCALE))
def test_scale_matches_paper(name):
    params_m, macs_g = SCALE[name]
    g = build(name)
    assert g.num_params / 1e6 == pytest.approx(params_m, rel=0.45), \
        f"{name} params {g.num_params / 1e6:.1f}M vs paper {params_m}M"
    assert g.total_macs() / 1e9 == pytest.approx(macs_g, rel=0.45), \
        f"{name} MACs {g.total_macs() / 1e9:.1f}G vs paper {macs_g}G"


class TestBatchScaling:
    def test_batch_scales_macs(self):
        g1 = build("Swin", batch=1)
        g2 = build("Swin", batch=2)
        assert g2.total_macs() == pytest.approx(2 * g1.total_macs(), rel=0.01)

    def test_batch_keeps_params(self):
        g1 = build("ViT", batch=1)
        g4 = build("ViT", batch=4)
        assert g1.num_params == g4.num_params


# Downscaled configurations live in the registry (SMOKE_CONFIGS) so the
# session layer and examples share them.
SMALL_CONFIGS = SMOKE_CONFIGS


@pytest.mark.parametrize("name", sorted(SMALL_CONFIGS))
def test_small_model_optimization_preserves_semantics(name):
    """The headline correctness property: the full SmartMem pipeline is a
    semantics-preserving rewrite on real model families."""
    g = build(name, **SMALL_CONFIGS[name])
    validate(g)
    result = smartmem_optimize(g)
    validate(result.graph)
    assert outputs_equal(g, result.graph)
    assert result.operator_count < len(g.nodes)
