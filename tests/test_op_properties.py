"""Property-based agreement between shape inference and kernels.

For every operator: generate random legal (shapes, attrs), run the NumPy
kernel on random data, and require the result shape to equal what
``infer_shapes`` promised.  This pins the two op definitions (static and
dynamic) together across the whole registry.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ir.ops import BINARY_FUNCS, UNARY_FUNCS, get_op
from repro.runtime.kernels import get_kernel


def check(op_type, input_arrays, attrs):
    shapes = [tuple(a.shape) for a in input_arrays]
    inferred = get_op(op_type).infer_shapes(shapes, attrs)
    result = get_kernel(op_type)(input_arrays, attrs)
    outputs = result if isinstance(result, tuple) else (result,)
    assert len(outputs) == len(inferred)
    for out, shape in zip(outputs, inferred):
        assert tuple(out.shape) == shape, (op_type, attrs)


small = st.integers(1, 5)


@given(n=small, c=st.sampled_from([2, 4, 6]), hw=st.integers(4, 9),
       oc=st.sampled_from([3, 4, 8]), k=st.sampled_from([1, 3]),
       stride=st.integers(1, 2), pad=st.integers(0, 1))
@settings(max_examples=40, deadline=None)
def test_conv2d(n, c, hw, oc, k, stride, pad):
    if hw + 2 * pad < k:
        return
    x = np.random.rand(n, c, hw, hw).astype(np.float32)
    w = np.random.rand(oc, c, k, k).astype(np.float32)
    check("conv2d", [x, w], {"kernel": (k, k), "stride": stride,
                             "padding": pad})


@given(m=small, k=small, n=small, batch=st.integers(0, 2),
       ta=st.booleans(), tb=st.booleans())
@settings(max_examples=40, deadline=None)
def test_matmul(m, k, n, batch, ta, tb):
    a_shape = (k, m) if ta else (m, k)
    b_shape = (n, k) if tb else (k, n)
    prefix = tuple([2] * batch)
    a = np.random.rand(*(prefix + a_shape)).astype(np.float32)
    b = np.random.rand(*(prefix + b_shape)).astype(np.float32)
    check("matmul", [a, b], {"transpose_a": ta, "transpose_b": tb})


@given(rank=st.integers(1, 4), func=st.sampled_from(sorted(UNARY_FUNCS)))
@settings(max_examples=40, deadline=None)
def test_unary(rank, func):
    shape = tuple(np.random.randint(1, 5, rank))
    check("unary", [np.random.rand(*shape).astype(np.float32)],
          {"func": func})


@given(func=st.sampled_from(sorted(set(BINARY_FUNCS) - {"pow", "div"})),
       rank=st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_binary_broadcast(func, rank):
    shape = tuple(np.random.randint(1, 5, rank))
    # b broadcasts with some dims set to 1
    b_shape = tuple(1 if np.random.rand() < 0.5 else d for d in shape)
    a = np.random.rand(*shape).astype(np.float32)
    b = np.random.rand(*b_shape).astype(np.float32)
    check("binary", [a, b], {"func": func})


@given(rank=st.integers(2, 4), axis_offset=st.integers(0, 3))
@settings(max_examples=30, deadline=None)
def test_softmax(rank, axis_offset):
    shape = tuple(np.random.randint(1, 6, rank))
    axis = axis_offset % rank
    check("softmax", [np.random.rand(*shape).astype(np.float32)],
          {"axis": axis})


@given(rank=st.integers(2, 4))
@settings(max_examples=30, deadline=None)
def test_layernorm(rank):
    shape = tuple(np.random.randint(2, 6, rank))
    x = np.random.rand(*shape).astype(np.float32)
    g = np.random.rand(shape[-1]).astype(np.float32)
    b = np.random.rand(shape[-1]).astype(np.float32)
    check("layernorm", [x, g, b], {"axes": -1})


@given(rank=st.integers(1, 4), keepdims=st.booleans(),
       kind=st.sampled_from(["reduce_mean", "reduce_sum", "reduce_max"]))
@settings(max_examples=40, deadline=None)
def test_reduce(rank, keepdims, kind):
    shape = tuple(np.random.randint(1, 5, rank))
    n_axes = np.random.randint(1, rank + 1)
    axes = tuple(sorted(np.random.choice(rank, n_axes, replace=False).tolist()))
    check(kind, [np.random.rand(*shape).astype(np.float32)],
          {"axes": axes, "keepdims": keepdims})


@given(rank=st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_transpose(rank):
    shape = tuple(np.random.randint(1, 5, rank))
    perm = tuple(np.random.permutation(rank).tolist())
    check("transpose", [np.random.rand(*shape).astype(np.float32)],
          {"perm": perm})


@given(rank=st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_slice(rank):
    shape = tuple(np.random.randint(2, 7, rank))
    starts, stops, steps = [], [], []
    for d in shape:
        start = np.random.randint(0, d)
        stop = np.random.randint(start + 1, d + 1)
        starts.append(start)
        stops.append(stop)
        steps.append(int(np.random.randint(1, 3)))
    check("slice", [np.random.rand(*shape).astype(np.float32)],
          {"starts": tuple(starts), "stops": tuple(stops),
           "steps": tuple(steps)})


@given(n_inputs=st.integers(1, 4), rank=st.integers(1, 3))
@settings(max_examples=30, deadline=None)
def test_concat(n_inputs, rank):
    base = tuple(np.random.randint(1, 5, rank))
    axis = int(np.random.randint(0, rank))
    arrays = []
    for _ in range(n_inputs):
        shape = list(base)
        shape[axis] = int(np.random.randint(1, 5))
        arrays.append(np.random.rand(*shape).astype(np.float32))
    check("concat", arrays, {"axis": axis})


@given(c_mult=st.integers(1, 3), hw=st.integers(2, 5), block=st.sampled_from([2]))
@settings(max_examples=20, deadline=None)
def test_depth_space_roundtrip_shapes(c_mult, hw, block):
    c = c_mult * block * block
    x = np.random.rand(1, c, hw, hw).astype(np.float32)
    check("depth_to_space", [x], {"block": block})
    y = np.random.rand(1, c_mult, hw * block, hw * block).astype(np.float32)
    check("space_to_depth", [y], {"block": block})


@given(kernel=st.integers(1, 3), stride=st.integers(1, 2),
       kind=st.sampled_from(["maxpool2d", "avgpool2d"]))
@settings(max_examples=30, deadline=None)
def test_pool(kernel, stride, kind):
    hw = int(np.random.randint(kernel, kernel + 6))
    x = np.random.rand(1, 3, hw, hw).astype(np.float32)
    check(kind, [x], {"kernel": kernel, "stride": stride})


@given(sections=st.integers(1, 4), per=st.integers(1, 3),
       rank=st.integers(1, 3))
@settings(max_examples=30, deadline=None)
def test_split(sections, per, rank):
    shape = list(np.random.randint(1, 4, rank))
    axis = int(np.random.randint(0, rank))
    shape[axis] = sections * per
    x = np.random.rand(*shape).astype(np.float32)
    check("split", [x], {"axis": axis, "sections": sections})
