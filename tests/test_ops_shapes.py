"""Shape inference tests for every registered operator."""

import pytest

from repro.ir.ops import Quadrant, all_op_types, get_op


def infer(op_type, ins, attrs=None):
    return get_op(op_type).infer_shapes(ins, attrs or {})


class TestConv:
    def test_basic(self):
        assert infer("conv2d", [(1, 3, 32, 32), (16, 3, 3, 3)],
                     {"kernel": (3, 3), "padding": 1}) == [(1, 16, 32, 32)]

    def test_stride(self):
        assert infer("conv2d", [(1, 3, 32, 32), (8, 3, 3, 3)],
                     {"stride": 2, "padding": 1}) == [(1, 8, 16, 16)]

    def test_groups(self):
        assert infer("conv2d", [(1, 8, 8, 8), (8, 1, 3, 3)],
                     {"groups": 8, "padding": 1}) == [(1, 8, 8, 8)]

    def test_channel_mismatch(self):
        with pytest.raises(ValueError, match="channel mismatch"):
            infer("conv2d", [(1, 4, 8, 8), (8, 3, 3, 3)], {"padding": 1})

    def test_collapsed_output(self):
        with pytest.raises(ValueError, match="collapsed"):
            infer("conv2d", [(1, 3, 2, 2), (8, 3, 5, 5)], {})

    def test_bad_bias(self):
        with pytest.raises(ValueError, match="bias"):
            infer("conv2d", [(1, 3, 8, 8), (8, 3, 1, 1), (4,)], {})

    def test_dilation(self):
        assert infer("conv2d", [(1, 3, 32, 32), (8, 3, 3, 3)],
                     {"dilation": 2, "padding": 2}) == [(1, 8, 32, 32)]

    def test_macs(self):
        opdef = get_op("conv2d")
        ins = [(1, 3, 32, 32), (16, 3, 3, 3)]
        outs = opdef.infer_shapes(ins, {"padding": 1})
        assert opdef.macs(ins, outs, {"padding": 1}) == 32 * 32 * 16 * 3 * 9


class TestMatmulDense:
    def test_matmul_2d(self):
        assert infer("matmul", [(4, 8), (8, 16)]) == [(4, 16)]

    def test_matmul_batched_broadcast(self):
        assert infer("matmul", [(2, 3, 4, 8), (8, 5)]) == [(2, 3, 4, 5)]

    def test_matmul_transpose_b(self):
        assert infer("matmul", [(4, 8), (16, 8)], {"transpose_b": True}) == [(4, 16)]

    def test_matmul_mismatch(self):
        with pytest.raises(ValueError, match="contraction"):
            infer("matmul", [(4, 8), (9, 16)])

    def test_matmul_reduction_dims(self):
        rd = get_op("matmul").reduction_dims([(4, 8), (8, 16)], [(4, 16)], {})
        assert rd == {0: (1,), 1: (0,)}

    def test_matmul_reduction_dims_transposed(self):
        rd = get_op("matmul").reduction_dims(
            [(4, 8), (16, 8)], [(4, 16)], {"transpose_b": True})
        assert rd == {0: (1,), 1: (1,)}

    def test_dense(self):
        assert infer("dense", [(2, 7, 16), (32, 16)]) == [(2, 7, 32)]

    def test_dense_mismatch(self):
        with pytest.raises(ValueError):
            infer("dense", [(2, 16), (32, 8)])


class TestElementwise:
    def test_unary(self):
        assert infer("unary", [(2, 3)], {"func": "relu"}) == [(2, 3)]

    def test_binary_broadcast(self):
        assert infer("binary", [(2, 1, 4), (3, 1)], {"func": "add"}) == [(2, 3, 4)]

    def test_binary_incompatible(self):
        with pytest.raises(ValueError, match="broadcast"):
            infer("binary", [(2, 3), (4,)], {"func": "add"})


class TestNorms:
    def test_softmax(self):
        assert infer("softmax", [(2, 5)], {"axis": -1}) == [(2, 5)]

    def test_softmax_reduction_axis(self):
        rd = get_op("softmax").reduction_dims([(2, 3, 5)], [(2, 3, 5)], {"axis": 1})
        assert rd == {0: (1,)}

    def test_layernorm(self):
        assert infer("layernorm", [(2, 5, 8), (8,), (8,)], {"axes": -1}) == [(2, 5, 8)]

    def test_layernorm_bad_affine(self):
        with pytest.raises(ValueError):
            infer("layernorm", [(2, 5, 8), (5,)], {"axes": -1})

    def test_instancenorm_requires_4d(self):
        with pytest.raises(ValueError):
            infer("instancenorm", [(2, 5, 8)])

    def test_groupnorm_divisibility(self):
        with pytest.raises(ValueError):
            infer("groupnorm", [(1, 30, 4, 4)], {"groups": 32})

    def test_reduce_keepdims(self):
        assert infer("reduce_mean", [(2, 3, 4)],
                     {"axes": (1,), "keepdims": True}) == [(2, 1, 4)]

    def test_reduce_drop(self):
        assert infer("reduce_sum", [(2, 3, 4)], {"axes": (0, 2)}) == [(3,)]

    def test_reduce_all(self):
        assert infer("reduce_max", [(2, 3)], {}) == [(1,)]


class TestLayoutOps:
    def test_reshape_minus_one(self):
        assert infer("reshape", [(2, 3, 4)], {"shape": (6, -1)}) == [(6, 4)]

    def test_reshape_two_minus_ones(self):
        with pytest.raises(ValueError):
            infer("reshape", [(2, 3, 4)], {"shape": (-1, -1)})

    def test_reshape_mismatch(self):
        with pytest.raises(ValueError):
            infer("reshape", [(2, 3)], {"shape": (7,)})

    def test_transpose(self):
        assert infer("transpose", [(2, 3, 4)], {"perm": (2, 0, 1)}) == [(4, 2, 3)]

    def test_depth_to_space(self):
        assert infer("depth_to_space", [(1, 8, 4, 4)], {"block": 2}) == [(1, 2, 8, 8)]

    def test_space_to_depth(self):
        assert infer("space_to_depth", [(1, 2, 8, 8)], {"block": 2}) == [(1, 8, 4, 4)]

    def test_d2s_divisibility(self):
        with pytest.raises(ValueError):
            infer("depth_to_space", [(1, 6, 4, 4)], {"block": 2})

    def test_layout_convert_identity_shape(self):
        assert infer("layout_convert", [(3, 4)]) == [(3, 4)]


class TestSelection:
    def test_slice(self):
        assert infer("slice", [(4, 6)], {"starts": (1, 0), "stops": (3, 6),
                                         "steps": (1, 2)}) == [(2, 3)]

    def test_slice_empty(self):
        with pytest.raises(ValueError):
            infer("slice", [(4,)], {"starts": (3,), "stops": (3,)})

    def test_gather(self):
        assert infer("gather", [(5, 8)], {"axis": 0, "indices_shape": (3,)}) == [(3, 8)]

    def test_concat(self):
        assert infer("concat", [(2, 3), (2, 5)], {"axis": 1}) == [(2, 8)]

    def test_concat_mismatch(self):
        with pytest.raises(ValueError):
            infer("concat", [(2, 3), (3, 3)], {"axis": 1})

    def test_pad(self):
        assert infer("pad", [(2, 3)], {"pads": ((1, 1), (0, 2))}) == [(4, 5)]


class TestPooling:
    def test_maxpool(self):
        assert infer("maxpool2d", [(1, 8, 16, 16)],
                     {"kernel": 2, "stride": 2}) == [(1, 8, 8, 8)]

    def test_global_avgpool(self):
        assert infer("global_avgpool", [(1, 8, 7, 7)]) == [(1, 8, 1, 1)]

    def test_upsample(self):
        assert infer("upsample2d", [(1, 4, 8, 8)], {"scale": 2}) == [(1, 4, 16, 16)]

    def test_embedding(self):
        assert infer("embedding", [(100, 32), (2, 7)]) == [(2, 7, 32)]


class TestRegistry:
    def test_unknown_op(self):
        with pytest.raises(KeyError):
            get_op("frobnicate")

    def test_all_ops_have_quadrants(self):
        for op_type in all_op_types():
            assert isinstance(get_op(op_type).quadrant, Quadrant)

    def test_layout_transform_flags(self):
        for op_type in ("reshape", "transpose", "depth_to_space",
                        "space_to_depth", "layout_convert"):
            assert get_op(op_type).is_layout_transform
        for op_type in ("conv2d", "matmul", "softmax", "concat"):
            assert not get_op(op_type).is_layout_transform

    def test_paper_table3_quadrants(self):
        """The classification examples given in Table 3."""
        assert get_op("conv2d").quadrant is Quadrant.ILD_VARIABLE
        assert get_op("matmul").quadrant is Quadrant.ILD_VARIABLE
        assert get_op("layernorm").quadrant is Quadrant.ILD_VARIABLE
        assert get_op("softmax").quadrant is Quadrant.ILD_VARIABLE
        assert get_op("reshape").quadrant is Quadrant.ILD_FIXED
        assert get_op("transpose").quadrant is Quadrant.ILD_FIXED
        assert get_op("depth_to_space").quadrant is Quadrant.ILD_FIXED
        assert get_op("space_to_depth").quadrant is Quadrant.ILD_FIXED
        assert get_op("unary").quadrant is Quadrant.ILI_VARIABLE
        assert get_op("binary").quadrant is Quadrant.ILI_VARIABLE
        assert get_op("gather").quadrant is Quadrant.ILI_FIXED
        assert get_op("slice").quadrant is Quadrant.ILI_FIXED
