"""Multi-process parallel backend: parity, sharding, supervision, shm.

Everything here runs on smoke-scale models; bursts go through the real
``repro.serve`` scheduler or straight through ``Session.execute_values``
so the whole dispatch path (sharding, shared-memory transport, stacked
passes inside workers, respawn supervision) is exercised end-to-end.
Outputs are always compared **byte-identical** against a single-process
reference session - the backend's core contract.
"""

import pytest

import repro
from repro.api import (
    CompileOptions, InferenceRequest, InvalidOptions, ServeOptions, serve,
)
from repro.models import build_smoke
from repro.runtime import FaultPlan, FaultRule, active_segments
from repro.runtime import parallel_backend as pb
from repro.runtime.parallel_backend import parallel_supported
from repro.runtime.session import _compile_session

pytestmark = pytest.mark.skipif(
    not parallel_supported(), reason="fork start method unavailable")

NO_FAULTS = FaultPlan()  # explicit empty plan: overrides ambient chaos


def reference_outputs(graph, count):
    session = _compile_session(graph, "Ours", faults=NO_FAULTS)
    inputs = [session.make_inputs(seed=seed) for seed in range(count)]
    return inputs, [session.run(dict(values)) for values in inputs]


def assert_byte_identical(responses, expected):
    for response, outputs in zip(responses, expected):
        for key, value in outputs.items():
            assert response.outputs[key].tobytes() == value.tobytes(), key


class TestOptionsValidation:
    def test_compile_workers_must_be_positive_int(self):
        with pytest.raises(InvalidOptions, match="workers"):
            CompileOptions(workers=0)
        with pytest.raises(InvalidOptions, match="workers"):
            CompileOptions(workers=-2)

    def test_compile_batch_must_be_positive_int(self):
        with pytest.raises(InvalidOptions, match="batch"):
            CompileOptions(batch=0)

    def test_serve_numeric_fields_validated(self):
        with pytest.raises(InvalidOptions, match="max_batch_size"):
            ServeOptions(max_batch_size=0)
        with pytest.raises(InvalidOptions, match="max_wait_ms"):
            ServeOptions(max_wait_ms=-1.0)
        with pytest.raises(InvalidOptions, match="workers"):
            ServeOptions(workers=0)

    def test_invalid_options_is_a_value_error(self):
        with pytest.raises(ValueError):
            ServeOptions(max_batch_size=0)

    def test_serve_shorthand_overrides_nested_compile(self):
        options = ServeOptions(backend="parallel", workers=3)
        compile_options = options.resolved_compile()
        assert compile_options.backend == "parallel"
        assert compile_options.workers == 3

    def test_serve_shorthand_defaults_to_nested_compile(self):
        nested = CompileOptions(backend="codegen", workers=2)
        assert ServeOptions(compile=nested).resolved_compile() is nested


class TestParallelParity:
    def test_served_burst_is_byte_identical_and_stacked(self):
        graph = build_smoke("ViT")
        inputs, expected = reference_outputs(graph, 32)
        service = serve(graph, ServeOptions(
            backend="parallel", workers=2, max_batch_size=16,
            max_wait_ms=5.0, compile=CompileOptions(faults=NO_FAULTS)))
        try:
            futures = [service.submit(InferenceRequest(inputs=values))
                       for values in inputs]
            responses = [f.result(timeout=120) for f in futures]
            report = service.report()
        finally:
            service.close()
        assert_byte_identical(responses, expected)
        assert report.stacked_batches > 0
        assert report.worker_restarts == 0

    def test_parallel_codegen_burst_is_byte_identical(self):
        graph = build_smoke("Conformer")
        inputs, expected = reference_outputs(graph, 16)
        service = serve(graph, ServeOptions(
            backend="parallel-codegen", workers=2, max_batch_size=16,
            max_wait_ms=5.0, compile=CompileOptions(faults=NO_FAULTS)))
        try:
            futures = [service.submit(InferenceRequest(inputs=values))
                       for values in inputs]
            responses = [f.result(timeout=120) for f in futures]
        finally:
            service.close()
        assert_byte_identical(responses, expected)

    def test_solo_request_through_parallel_session(self):
        graph = build_smoke("Pythia")
        inputs, expected = reference_outputs(graph, 1)
        session = _compile_session(
            graph, "Ours", backend="parallel", workers=2, faults=NO_FAULTS)
        try:
            outputs = session.run(dict(inputs[0]))
            for key, value in expected[0].items():
                assert outputs[key].tobytes() == value.tobytes()
        finally:
            session.close()

    def test_unsupported_platform_degrades_in_process(self, monkeypatch):
        monkeypatch.setattr(
            "repro.runtime.parallel_backend.parallel_supported",
            lambda: False)
        graph = build_smoke("Pythia")
        inputs, expected = reference_outputs(graph, 4)
        session = _compile_session(
            graph, "Ours", backend="parallel", workers=2, faults=NO_FAULTS)
        try:
            assert session.ensure_parallel_pool() is None
            results, backend_name, _ = session.execute_values(
                [session._admit(dict(values)) for values in inputs])
            for (outputs, _report, _wall), want in zip(results, expected):
                for key, value in want.items():
                    assert outputs[key].tobytes() == value.tobytes()
        finally:
            session.close()


class TestCrashSupervision:
    CRASH_ONCE = FaultPlan(rules=(
        FaultRule(kind="worker_crash", probability=1.0, times=1),))

    def burst(self, graph, inputs, plan, workers=2):
        service = serve(graph, ServeOptions(
            backend="parallel", workers=workers, max_batch_size=32,
            max_wait_ms=5.0, compile=CompileOptions(faults=plan)))
        try:
            futures = [service.submit(InferenceRequest(inputs=values))
                       for values in inputs]
            responses = [f.result(timeout=120) for f in futures]
            report = service.report()
        finally:
            service.close()
        return responses, report

    def test_crash_mid_shard_respawns_with_identical_outputs(self):
        graph = build_smoke("ViT")
        inputs, expected = reference_outputs(graph, 32)
        responses, report = self.burst(graph, inputs, self.CRASH_ONCE)
        assert_byte_identical(responses, expected)
        assert report.worker_restarts == 1
        assert not active_segments()

    def test_exhausted_respawn_budget_rescues_in_process(self, monkeypatch):
        monkeypatch.setattr(pb, "_MAX_SHARD_RETRIES", 0)
        graph = build_smoke("ViT")
        inputs, expected = reference_outputs(graph, 32)
        responses, report = self.burst(graph, inputs, self.CRASH_ONCE)
        assert_byte_identical(responses, expected)
        assert report.worker_restarts == 1
        assert not active_segments()

    def test_chaos_plan_worker_crashes_are_absorbed(self):
        graph = build_smoke("ViT")
        inputs, expected = reference_outputs(graph, 32)
        for seed in (7, 20_240_428):
            responses, _report = self.burst(
                graph, inputs, FaultPlan.chaos(seed))
            assert_byte_identical(responses, expected)
        assert not active_segments()


class TestShmCleanup:
    def test_close_unlinks_every_segment(self):
        graph = build_smoke("Pythia")
        service = serve(graph, ServeOptions(
            backend="parallel", workers=2,
            compile=CompileOptions(faults=NO_FAULTS)))
        future = service.submit(InferenceRequest(
            inputs=_compile_session(
                graph, "Ours", faults=NO_FAULTS).make_inputs(seed=0)))
        future.result(timeout=120)
        assert active_segments()  # the ring is live while serving
        service.close()
        assert not active_segments()

    def test_close_is_idempotent_and_session_survives(self):
        graph = build_smoke("Pythia")
        session = _compile_session(
            graph, "Ours", backend="parallel", workers=1, faults=NO_FAULTS)
        inputs = session.make_inputs(seed=0)
        first = session.run(dict(inputs))
        session.close()
        session.close()
        assert not active_segments()
        # The session stays usable: the pool is recreated on demand.
        again = session.run(dict(inputs))
        for key, value in first.items():
            assert again[key].tobytes() == value.tobytes()
        session.close()
        assert not active_segments()


class TestSharding:
    def test_stackable_shards_stay_large(self):
        graph = build_smoke("ViT")
        session = _compile_session(
            graph, "Ours", backend="parallel", workers=4, faults=NO_FAULTS)
        session.parallel_capacity = 32
        try:
            pool = session.ensure_parallel_pool()
            assert pool is not None
            assert pool._num_shards(1) == 1
            assert pool._num_shards(pb._MIN_STACKED_SHARD - 1) == 1
            # capacity bounds a shard from above regardless of fan-out
            assert pool._num_shards(4 * pool.capacity) >= 4
        finally:
            session.close()

    def test_worker_restarts_visible_on_session(self):
        graph = build_smoke("Pythia")
        session = _compile_session(
            graph, "Ours", backend="parallel", workers=1,
            faults=FaultPlan(rules=(
                FaultRule(kind="worker_crash", probability=1.0, times=1),)))
        try:
            session.run(dict(session.make_inputs(seed=0)))
            assert session.parallel_restarts == 1
        finally:
            session.close()
