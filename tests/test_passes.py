"""Tests for the pass-manager framework and the pipeline shim."""

import pytest

from repro.core import (
    Pass, PassContext, PassManager, PipelineStages, available_passes,
    canonical_passes, make_pass, pass_timing_stats, register_pass,
    smartmem_optimize,
)
from repro.core.elimination import (
    eliminate_dead_nodes, eliminate_layout_transforms,
)
from repro.core.fusion import SMARTMEM_POLICY, fuse
from repro.core.layout_selection import select_layouts
from repro.runtime import SD8GEN2, estimate, outputs_equal


class TestCanonicalPasses:
    def test_default_pass_list(self):
        names = [p.name for p in canonical_passes()]
        assert names == ["lte", "dce", "index-simplify", "fusion",
                         "layout-select", "tuning", "lower"]

    def test_no_lte_drops_elimination_block(self):
        names = [p.name for p in canonical_passes(PipelineStages(lte=False))]
        assert names == ["fusion", "layout-select", "tuning", "lower"]

    def test_no_layout_selection_uses_default_layout(self):
        names = [p.name for p in canonical_passes(
            PipelineStages(layout_selection=False, full_texture=False))]
        assert "default-layout" in names
        assert "layout-select" not in names
        assert "tuning" not in names

    def test_configs_follow_stages(self):
        passes = {p.name: p for p in canonical_passes(
            PipelineStages(eliminate_slice=False, simplify_index=False,
                           full_texture=True, tuned_boost=1.2))}
        assert passes["lte"].config == {"include_slice": False}
        assert passes["index-simplify"].config == {"simplify": False}
        assert passes["tuning"].config == {"tuned_boost": 1.2}
        assert passes["layout-select"].config["texture_rank_min"] == 2

    def test_fusion_ablation_gets_none_policy(self):
        passes = {p.name: p for p in canonical_passes(
            PipelineStages(fusion=False))}
        assert passes["fusion"].config["policy"] is None


class TestShimEquivalence:
    """smartmem_optimize through the pass manager == the old hard-coded
    sequence, stage by stage."""

    @pytest.mark.parametrize("stages", [
        PipelineStages(),
        PipelineStages(lte=False),
        PipelineStages(fusion=False),
        PipelineStages(layout_selection=False, full_texture=False),
        PipelineStages(simplify_index=False),
        PipelineStages(eliminate_slice=False),
        PipelineStages(use_texture=False, full_texture=False),
    ])
    def test_matches_manual_sequence(self, attention_graph, stages):
        result = smartmem_optimize(attention_graph, stages)

        g = attention_graph.clone()
        if stages.lte:
            eliminate_layout_transforms(g, include_slice=stages.eliminate_slice)
            eliminate_dead_nodes(g)
        if stages.fusion:
            fuse(g, SMARTMEM_POLICY)
        else:
            for i, node in enumerate(g.iter_nodes()):
                node.group = i

        assert set(result.graph.nodes) == set(g.nodes)
        assert result.graph.num_operators == g.num_operators
        assert outputs_equal(attention_graph, result.graph)
        if stages.layout_selection:
            rank_min = 2 if stages.full_texture else 4
            plan = select_layouts(g, use_texture=stages.use_texture,
                                  texture_rank_min=rank_min)
            assert result.plan.layouts == plan.layouts

    def test_result_fields_preserved(self, attention_graph):
        result = smartmem_optimize(attention_graph)
        assert result.source_operator_count == len(attention_graph.nodes)
        assert result.fusion_stats is not None
        assert result.elimination_stats is not None
        assert result.extra_efficiency == pytest.approx(1.1)


class TestInstrumentation:
    def test_pass_records_in_order(self, attention_graph):
        result = smartmem_optimize(attention_graph)
        assert [r.name for r in result.pass_records] == [
            "lte", "dce", "index-simplify", "fusion", "layout-select",
            "tuning", "lower"]
        assert all(r.wall_s >= 0 for r in result.pass_records)
        assert result.pass_timings["lte"] >= 0

    def test_pass_stats_content(self, attention_graph):
        records = {r.name: r for r in
                   smartmem_optimize(attention_graph).pass_records}
        assert records["lte"].stats["eliminated"] > 0
        assert records["layout-select"].stats["layouts"] > 0
        assert records["tuning"].stats["extra_efficiency"] == pytest.approx(1.1)

    def test_global_timing_accumulator_grows(self, attention_graph):
        before = pass_timing_stats().get("lte", {"runs": 0})["runs"]
        smartmem_optimize(attention_graph)
        after = pass_timing_stats()["lte"]["runs"]
        assert after == before + 1


class TestRegistry:
    def test_canonical_passes_registered(self):
        for name in ("lte", "dce", "index-simplify", "fusion",
                     "layout-select", "default-layout", "tuning", "lower"):
            assert name in available_passes()

    def test_make_pass_by_name(self):
        p = make_pass("lte", include_slice=False)
        assert p.name == "lte"
        assert p.config == {"include_slice": False}

    def test_unknown_pass_raises(self):
        with pytest.raises(KeyError):
            make_pass("frobnicate")

    def test_custom_pass_runs_in_manager(self, attention_graph):
        class CountOps(Pass):
            name = "count-ops"

            def run(self, ctx: PassContext) -> dict:
                return {"ops": len(ctx.graph.nodes)}

        pm = PassManager(canonical_passes() + [CountOps()])
        ctx = pm.run(attention_graph.clone(), PipelineStages())
        assert ctx.records[-1].name == "count-ops"
        assert ctx.records[-1].stats["ops"] == len(ctx.graph.nodes)

    def test_register_pass_requires_name(self):
        with pytest.raises(ValueError):
            @register_pass
            class Nameless(Pass):
                pass


class TestSimplifyIndexRecorded:
    """Regression for the formerly dead ``simplify_index`` ablation branch:
    the choice must land on the result and reach the cost model."""

    def test_choice_recorded_on_result(self, attention_graph):
        raw = smartmem_optimize(attention_graph,
                                PipelineStages(simplify_index=False))
        assert raw.simplify_index is False
        assert raw.cost_config().simplify_index is False
        simplified = smartmem_optimize(attention_graph)
        assert simplified.simplify_index is True
        assert simplified.cost_config().simplify_index is True

    def test_cost_model_sees_the_choice(self, attention_graph):
        """Costing an ablated module through its own cost_config() prices
        the raw index expressions - direct estimate() calls previously
        silently used the simplified default."""
        raw = smartmem_optimize(attention_graph,
                                PipelineStages(simplify_index=False))
        lat_raw = estimate(raw.graph, SD8GEN2, raw.plan,
                           raw.cost_config()).latency_ms
        simplified = smartmem_optimize(attention_graph)
        lat_simplified = estimate(simplified.graph, SD8GEN2, simplified.plan,
                                  simplified.cost_config()).latency_ms
        assert lat_raw > lat_simplified

    def test_cost_config_carries_tuning_boost(self, attention_graph):
        full = smartmem_optimize(attention_graph)
        assert full.cost_config().extra_efficiency == pytest.approx(1.1)
        partial = smartmem_optimize(attention_graph,
                                    PipelineStages(full_texture=False))
        assert partial.cost_config().extra_efficiency == 1.0

    def test_custom_tuning_pass_threads_through_context(self, attention_graph):
        """A TuningPass config that differs from the stages default must
        reach the context (and thus cost_config), not be recomputed."""
        from repro.core.passes import TuningPass

        passes = [p if p.name != "tuning" else TuningPass(tuned_boost=1.3)
                  for p in canonical_passes()]
        ctx = PassManager(passes).run(attention_graph.clone(),
                                      PipelineStages())
        assert ctx.extra_efficiency == pytest.approx(1.3)
