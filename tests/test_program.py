"""Tests for the lowered ExecutionProgram + pluggable backend layer."""

from collections import Counter

import numpy as np
import pytest

from repro.core import smartmem_optimize
from repro.ir.tensor import TensorSpec
from repro.memory.pool import SizeClassPool, liveness_schedule
from repro.models import SMOKE_CONFIGS, build
from repro.runtime import (
    ExecutionBackend, ExecutionProgram, NumPyBackend, available_backends,
    execute, get_backend, lower, make_inputs, register_backend, run_node,
)


def _interpret(graph, inputs):
    """The pre-lowering reference: run_node over the topo order."""
    values = dict(inputs)
    for node in graph.topo_order():
        run_node(graph, node, values)
    return {name: values[name] for name in graph.outputs}


@pytest.mark.parametrize("name", sorted(SMOKE_CONFIGS))
class TestBackendParity:
    """Program execution == per-node interpretation on the whole zoo."""

    def test_program_outputs_match_execute(self, name):
        graph = build(name, **SMOKE_CONFIGS[name])
        inputs = make_inputs(graph)
        ref = _interpret(graph, inputs)
        out = execute(graph, inputs)  # the program path
        assert list(out) == list(ref)
        for key in ref:
            assert np.array_equal(out[key], ref[key]), key
        # and through the full Ours pipeline (views attached, nodes fused)
        optimized = smartmem_optimize(graph).graph
        opt_inputs = {k: v for k, v in inputs.items()
                      if k in optimized.tensors}
        opt_interp = _interpret(optimized, dict(opt_inputs))
        opt_program = execute(optimized, opt_inputs)
        for key in opt_interp:
            assert np.array_equal(opt_program[key], opt_interp[key]), key
            assert np.allclose(ref[key], opt_program[key],
                               rtol=1e-4, atol=1e-5), key


@pytest.mark.parametrize("name", ["ViT", "Swin", "Pythia", "SD-UNet",
                                  "ResNext", "Conformer"])
class TestSlotPlan:
    """Static buffer-slot assignment is a valid register allocation."""

    def _replay(self, graph):
        """Walk the liveness schedule over the plan, checking invariants."""
        program = lower(graph)
        plan = program.slot_plan
        schedule = liveness_schedule(graph)
        live_slot: dict[int, str] = {}
        live_by_class: Counter = Counter()
        peak_by_class: Counter = Counter()

        def acquire(tensor):
            slot = plan.tensor_slot[tensor]
            size = graph.tensors[tensor].size_bytes
            # exact size class, and never shared while both tensors live
            assert plan.slot_sizes[slot] == size
            assert slot not in live_slot, (tensor, live_slot[slot])
            live_slot[slot] = tensor
            live_by_class[size] += 1
            peak_by_class[size] = max(peak_by_class[size], live_by_class[size])

        for t in graph.inputs:
            acquire(t)
        order = graph.topo_order()
        for step, node in enumerate(order):
            for t in node.outputs:
                # fused-chain interiors are never materialized: they hold
                # no slot by construction
                if t in schedule.materialized \
                        and t not in program.fused_interiors:
                    acquire(t)
            for t in schedule.releases_at[step]:
                slot = plan.tensor_slot.get(t)
                if slot is not None and live_slot.get(slot) == t:
                    del live_slot[slot]
                    live_by_class[plan.slot_sizes[slot]] -= 1
        return plan, peak_by_class

    def test_no_two_live_tensors_share_a_slot(self, name):
        graph = build(name, **SMOKE_CONFIGS[name])
        self._replay(graph)  # acquire() asserts per step

    def test_slot_count_bounded_by_liveness_peak(self, name):
        graph = build(name, **SMOKE_CONFIGS[name])
        plan, peak_by_class = self._replay(graph)
        for size, count in Counter(plan.slot_sizes).items():
            assert count <= peak_by_class[size], size
        # and in bytes: the plan never exceeds the walk's peak footprint
        assert plan.peak_bytes <= sum(
            size * count for size, count in peak_by_class.items())


class TestLowering:
    def test_program_memoized_per_generation(self, attention_graph):
        a = lower(attention_graph)
        assert lower(attention_graph) is a
        attention_graph.add_tensor(TensorSpec("scratch", (1,)))
        b = lower(attention_graph)
        assert b is not a

    def test_optimize_result_carries_program(self, attention_graph):
        result = smartmem_optimize(attention_graph)
        assert isinstance(result.program, ExecutionProgram)
        assert result.program.graph is result.graph
        assert result.program is lower(result.graph)  # one lowering
        lower_record = [r for r in result.pass_records if r.name == "lower"]
        assert len(lower_record) == 1
        assert lower_record[0].stats["steps"] == len(result.graph.nodes)

    def test_static_pool_walk(self, attention_graph):
        program = lower(attention_graph)
        plan = program.slot_plan
        assert len(plan.timeline_live) == len(attention_graph.topo_order())
        assert plan.peak_bytes == max(plan.timeline_live)
        assert plan.allocs_per_run >= plan.num_slots
        assert plan.size_class_counts == Counter(plan.slot_sizes)

    def test_views_preresolved(self, attention_graph):
        optimized = smartmem_optimize(attention_graph).graph
        program = lower(optimized)
        lowered_views = sum(len(s.appliers) for s in program.steps)
        graph_views = sum(
            1 for node in optimized.iter_nodes()
            for view in node.input_views.values() if not view.is_identity)
        assert lowered_views == graph_views > 0


class TestServingExecution:
    def test_steady_state_skips_pool_traffic(self, attention_graph):
        program = lower(attention_graph)
        pool = SizeClassPool()
        backend = get_backend("numpy")
        values = make_inputs(attention_graph)
        _, first = backend.run_serving(program, dict(values), pool)
        assert first.allocations == program.slot_plan.num_slots
        # steady state: the free blocks are exactly the slot plan
        assert pool.matches_free_state(program.slot_plan.size_class_counts)
        out, second = backend.run_serving(program, dict(values), pool)
        assert second.allocations == 0
        assert second.reuses == program.slot_plan.allocs_per_run
        assert second.final_bytes == 0
        assert second.peak_bytes == first.peak_bytes
        ref = execute(attention_graph, dict(values))
        for key in ref:
            assert np.array_equal(out[key], ref[key])

    def test_failed_run_leaves_pool_consistent(self, attention_graph):
        program = lower(attention_graph)
        pool = SizeClassPool()
        backend = get_backend("numpy")
        values = make_inputs(attention_graph)
        bad = dict(values)
        bad["x"] = bad["x"][:, :-1]  # wrong shape -> step raises mid-run
        # failure on a cold pool: the slow path's cleanup returns blocks
        with pytest.raises(Exception):
            backend.run_serving(program, dict(bad), pool)
        assert pool.live_bytes == 0
        backend.run_serving(program, dict(values), pool)
        # failure at steady state: the fast path never touches the pool
        with pytest.raises(Exception):
            backend.run_serving(program, dict(bad), pool)
        assert pool.live_bytes == 0
        # still serves correctly afterwards, still all-reuse
        _, report = backend.run_serving(program, dict(values), pool)
        assert report.allocations == 0

    def test_run_many_matches_single_runs(self, attention_graph):
        program = lower(attention_graph)
        backend = get_backend("numpy")
        pool = SizeClassPool()
        batch = [make_inputs(attention_graph, seed=s) for s in range(3)]
        results = backend.run_many(program, [dict(b) for b in batch], pool)
        assert len(results) == 3
        for inputs, (out, report, wall_s) in zip(batch, results):
            ref = execute(attention_graph, inputs)
            assert wall_s > 0
            for key in ref:
                assert np.array_equal(out[key], ref[key])


class TestBackendRegistry:
    def test_numpy_backend_registered(self):
        assert "numpy" in available_backends()
        assert isinstance(get_backend("numpy"), NumPyBackend)
        assert get_backend("numpy") is get_backend("numpy")  # singleton

    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError, match="unknown backend"):
            get_backend("tpu")

    def test_register_backend_requires_name(self):
        with pytest.raises(ValueError):
            @register_backend
            class Nameless(ExecutionBackend):
                pass

    def test_custom_backend_pluggable(self, attention_graph):
        calls = []

        @register_backend
        class CountingBackend(NumPyBackend):
            name = "numpy-counting"

            def run(self, program, values):
                calls.append(program.num_steps)
                return super().run(program, values)

        backend = get_backend("numpy-counting")
        values = make_inputs(attention_graph)
        out = backend.run(lower(attention_graph), dict(values))
        assert calls == [len(attention_graph.nodes)]
        ref = execute(attention_graph, values)
        for key in ref:
            assert np.array_equal(out[key], ref[key])
