"""Fault-tolerance tests: error taxonomy, fault injection, isolation,
retry/backoff, worker supervision, and backend graceful degradation.

Every failure path is driven deterministically through
:class:`repro.FaultPlan` seeds - no reliance on real crashes or timing
races for the core semantics.
"""

import threading
import time

import numpy as np
import pytest

import repro
from repro import FaultPlan, FaultRule, RetryPolicy
from repro.api import (
    AdmissionError, BackendCompilationError, CompileOptions, DeadlineExceeded,
    ExecutionError, InferenceRequest, QueueFull, ReproError, ServeOptions,
    Service, ServiceClosed, compile_private, serve,
)
from repro.models import SMOKE_CONFIGS, build
from repro.runtime import circuit_breaker, execute, make_inputs
from repro.runtime.faults import FaultInjector, InjectedCrash


def _smoke(name="Pythia"):
    return build(name, **SMOKE_CONFIGS[name])


def _graph_inputs(graph, seed):
    full = make_inputs(graph, seed=seed)
    return {name: full[name] for name in graph.inputs}


def _reference(graph, inputs):
    return execute(graph, {**make_inputs(graph, seed=0), **inputs})


def _assert_matches_reference(graph, inputs, outputs):
    ref = _reference(graph, inputs)
    assert sorted(outputs) == sorted(ref)
    for key in ref:
        assert np.array_equal(outputs[key], ref[key]), key


@pytest.fixture(autouse=True)
def _fresh_circuit():
    """The circuit breaker is process-wide state; isolate every test."""
    circuit_breaker().reset()
    yield
    circuit_breaker().reset()


# ---------------------------------------------------------------------------
# Error taxonomy
# ---------------------------------------------------------------------------

class TestErrorTaxonomy:
    def test_hierarchy_preserves_legacy_builtin_types(self):
        # Existing callers catch ValueError / TimeoutError / RuntimeError;
        # the taxonomy must stay substitutable for all of them.
        assert issubclass(AdmissionError, ValueError)
        assert issubclass(DeadlineExceeded, TimeoutError)
        for cls in (ExecutionError, BackendCompilationError, ServiceClosed,
                    QueueFull):
            assert issubclass(cls, RuntimeError)
        for cls in (AdmissionError, DeadlineExceeded, ExecutionError,
                    BackendCompilationError, ServiceClosed, QueueFull):
            assert issubclass(cls, ReproError)

    def test_retryable_defaults(self):
        assert not ExecutionError("x").retryable
        assert not AdmissionError("x").retryable
        assert not DeadlineExceeded("x").retryable
        assert BackendCompilationError("x").retryable
        assert QueueFull("x").retryable

    def test_context_carries_attribution(self):
        err = ExecutionError(
            "boom", request_id="r1", model="Pythia", backend="codegen",
            fingerprint="abc", retryable=True)
        assert err.request_id == "r1"
        assert err.context() == {
            "request_id": "r1", "model": "Pythia", "fingerprint": "abc",
            "backend": "codegen", "retryable": True}

    def test_admission_error_names_request_and_model(self):
        model = repro.compile(_smoke())
        with pytest.raises(AdmissionError, match="request 'r9'") as exc:
            model.run(InferenceRequest(inputs={"nope": np.zeros(1)},
                                       request_id="r9"))
        assert exc.value.request_id == "r9"
        assert exc.value.model


# ---------------------------------------------------------------------------
# Fault plans and injection
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_rule_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule(kind="cosmic-ray")
        with pytest.raises(ValueError, match="probability"):
            FaultRule(kind="kernel", probability=1.5)
        with pytest.raises(ValueError, match="latency_ms"):
            FaultRule(kind="latency", latency_ms=-1)

    def test_plan_is_hashable_and_splits_the_session_cache(self):
        plan = FaultPlan(rules=(FaultRule(kind="latency", latency_ms=0.01),))
        hash(plan)  # frozen -> usable in cache keys
        graph = _smoke()
        clean = repro.compile(graph)
        faulty = repro.compile(graph, faults=plan)
        again = repro.compile(graph)
        assert faulty.session is not clean.session
        assert again.session is clean.session

    def test_chaos_plan_is_deterministic_per_seed(self):
        assert FaultPlan.chaos(7) == FaultPlan.chaos(7)
        assert FaultPlan.chaos(7) != FaultPlan.chaos(8)

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_SEED", raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv("REPRO_FAULT_SEED", "42")
        assert FaultPlan.from_env() == FaultPlan.chaos(42)
        monkeypatch.setenv("REPRO_FAULT_SEED", "not-a-seed")
        with pytest.raises(ValueError):
            FaultPlan.from_env()

    def test_injected_kernel_fault_surfaces_as_execution_error(self):
        plan = FaultPlan(rules=(FaultRule(kind="kernel", step=3),))
        model = compile_private(_smoke(), CompileOptions(faults=plan))
        with pytest.raises(ExecutionError, match="injected kernel fault "
                                                 "at step 3"):
            model.run(model.make_request(seed=0))
        # The rule's budget (times=1) is spent: the next run is clean.
        response = model.run(model.make_request(seed=0))
        assert response.stats.backend == "numpy"

    def test_service_level_rules_are_pure_per_attempt(self):
        plan = FaultPlan(rules=(
            FaultRule(kind="kernel", request_id="bad", attempts=(0,)),))
        injector = FaultInjector(plan)
        # Same (request_id, attempt) -> same answer, however often asked
        # (the coalesced-batch pass and the solo isolation pass agree).
        assert injector.request_faults("bad", 0)
        assert injector.request_faults("bad", 0)
        assert not injector.request_faults("bad", 1)
        assert not injector.request_faults("other", 0)


# ---------------------------------------------------------------------------
# Graceful degradation: codegen -> numpy fallback + circuit breaker
# ---------------------------------------------------------------------------

class TestGracefulDegradation:
    def test_codegen_compile_fault_falls_back_to_identical_outputs(self):
        graph = _smoke()
        inputs = _graph_inputs(graph, seed=5)
        plan = FaultPlan(rules=(FaultRule(kind="compile"),))
        model = compile_private(
            _smoke(), CompileOptions(backend="codegen", faults=plan))

        degraded = model.run(InferenceRequest(inputs=inputs))
        assert degraded.stats.backend == "numpy"
        assert model.session.stats.fallbacks == 1
        _assert_matches_reference(graph, inputs, degraded.outputs)

        # Fault budget spent: the next run takes the codegen path again
        # and produces the same bytes.
        recovered = model.run(InferenceRequest(inputs=inputs))
        assert recovered.stats.backend == "codegen"
        assert model.session.stats.fallbacks == 1
        _assert_matches_reference(graph, inputs, recovered.outputs)

    def test_circuit_breaker_opens_after_repeated_failures(self):
        plan = FaultPlan(rules=(FaultRule(kind="compile", times=None),))
        model = compile_private(
            _smoke(), CompileOptions(backend="codegen", faults=plan))
        session = model.session
        breaker = circuit_breaker()
        request = model.make_request(seed=0)

        for expected in (1, 2, 3):
            assert model.run(request).stats.backend == "numpy"
            assert session.stats.fallbacks == expected
        assert breaker.is_open("codegen", session.fingerprint)

        # Open circuit: numpy directly, no further failed codegen tries.
        assert model.run(request).stats.backend == "numpy"
        assert session.stats.fallbacks == 3

    def test_compile_faults_never_target_the_reference_backend(self):
        plan = FaultPlan(rules=(FaultRule(kind="compile", times=None),))
        model = compile_private(
            _smoke(), CompileOptions(backend="numpy", faults=plan))
        response = model.run(model.make_request(seed=0))
        assert response.stats.backend == "numpy"
        assert model.session.stats.fallbacks == 0

    def test_run_batch_degrades_as_a_unit(self):
        graph = _smoke()
        plan = FaultPlan(rules=(FaultRule(kind="compile"),))
        model = compile_private(
            _smoke(), CompileOptions(backend="codegen", faults=plan))
        requests = [InferenceRequest(inputs=_graph_inputs(graph, seed=s))
                    for s in range(3)]
        responses = model.run_batch(requests)
        assert [r.stats.backend for r in responses] == ["numpy"] * 3
        assert model.session.stats.fallbacks == 1
        for seed, response in enumerate(responses):
            _assert_matches_reference(
                graph, _graph_inputs(graph, seed), response.outputs)


# ---------------------------------------------------------------------------
# Scheduler: isolation, retry/backoff
# ---------------------------------------------------------------------------

class TestIsolationAndRetry:
    def test_batchmates_survive_a_faulting_request(self):
        graph = _smoke()
        plan = FaultPlan(rules=(
            FaultRule(kind="kernel", request_id="bad"),))
        service = Service(
            compile_private(_smoke(), CompileOptions()),
            ServeOptions(max_batch_size=4, max_wait_ms=0.0, faults=plan),
            _start=False)
        futures = {}
        for rid in ("ok-1", "bad", "ok-2"):
            seed = hash(rid) % 100
            inputs = _graph_inputs(graph, seed)
            futures[rid] = (inputs, service.submit(
                InferenceRequest(inputs=inputs, request_id=rid)))
        service._execute(service._next_batch())

        for rid in ("ok-1", "ok-2"):
            inputs, future = futures[rid]
            _assert_matches_reference(graph, inputs, future.result().outputs)
        with pytest.raises(ExecutionError,
                           match="request 'bad': injected kernel fault"):
            futures["bad"][1].result()
        assert futures["bad"][1].exception().request_id == "bad"

        report = service.report()
        assert report.isolated == 3  # whole batch re-run request-by-request
        assert report.failed == 1
        assert report.requests == 2
        service.close()

    def test_retryable_fault_succeeds_on_retry_within_deadline(self):
        graph = _smoke()
        plan = FaultPlan(rules=(FaultRule(
            kind="kernel", request_id="flaky", attempts=(0,),
            retryable=True),))
        service = serve(
            _smoke(), ServeOptions(
                max_batch_size=4, max_wait_ms=1.0, faults=plan,
                retry=RetryPolicy(max_attempts=3, backoff_ms=0.2)))
        inputs = _graph_inputs(graph, seed=11)
        mate_inputs = _graph_inputs(graph, seed=12)
        flaky = service.submit(InferenceRequest(
            inputs=inputs, request_id="flaky", deadline_ms=10_000.0))
        mate = service.submit(InferenceRequest(
            inputs=mate_inputs, request_id="mate"))

        response = flaky.result(timeout=30.0)
        assert response.attempts == 2  # attempt 0 faulted, attempt 1 served
        _assert_matches_reference(graph, inputs, response.outputs)
        _assert_matches_reference(
            graph, mate_inputs, mate.result(timeout=30.0).outputs)
        assert service.report().retries == 1
        service.close()

    def test_retry_never_overshoots_the_deadline(self):
        plan = FaultPlan(rules=(FaultRule(
            kind="kernel", request_id="flaky", retryable=True),))
        service = Service(
            compile_private(_smoke(), CompileOptions()),
            ServeOptions(max_batch_size=2, max_wait_ms=0.0, faults=plan,
                         retry=RetryPolicy(max_attempts=5, backoff_ms=500.0)),
            _start=False)
        future = service.submit(InferenceRequest(
            inputs=_graph_inputs(service.program.graph, 0),
            request_id="flaky", deadline_ms=50.0))
        service._execute(service._next_batch())
        with pytest.raises(TimeoutError,
                           match="request 'flaky' missed its deadline"):
            future.result()
        report = service.report()
        assert report.expired == 1
        assert report.retries == 0  # failed instead of waiting past it
        service.close()

    def test_exhausted_retries_fail_with_attributed_error(self):
        plan = FaultPlan(rules=(FaultRule(
            kind="kernel", request_id="doomed", retryable=True),))
        service = serve(
            _smoke(), ServeOptions(
                max_batch_size=2, max_wait_ms=0.0, faults=plan,
                retry=RetryPolicy(max_attempts=2, backoff_ms=0.2)))
        future = service.submit(InferenceRequest(
            inputs=_graph_inputs(service.program.graph, 0),
            request_id="doomed"))
        with pytest.raises(ExecutionError,
                           match="request 'doomed': injected kernel fault"):
            future.result(timeout=30.0)
        report = service.report()
        assert report.retries == 1
        assert report.failed == 1
        service.close()


# ---------------------------------------------------------------------------
# Worker supervision
# ---------------------------------------------------------------------------

class TestSupervision:
    def test_crashed_worker_is_restarted_and_batch_rescued(self):
        graph = _smoke()
        plan = FaultPlan(rules=(
            FaultRule(kind="crash", request_id="boom"),))  # fires once
        service = serve(
            _smoke(), ServeOptions(max_batch_size=4, max_wait_ms=5.0,
                                   faults=plan))
        futures = {}
        for rid in ("a", "boom", "b"):
            seed = len(futures)
            inputs = _graph_inputs(graph, seed)
            futures[rid] = (inputs, service.submit(
                InferenceRequest(inputs=inputs, request_id=rid)))

        # Every request survives the crash - including the one that
        # triggered it (its crash budget is spent; the replacement
        # worker serves the rescued batch).
        for rid, (inputs, future) in futures.items():
            _assert_matches_reference(
                graph, inputs, future.result(timeout=30.0).outputs)
        assert service.report().worker_restarts == 1

        # The replacement worker keeps serving new traffic.
        inputs = _graph_inputs(graph, seed=9)
        after = service.submit(InferenceRequest(inputs=inputs))
        _assert_matches_reference(
            graph, inputs, after.result(timeout=30.0).outputs)
        assert service.report().failed == 0
        service.close()

    def test_poisonous_request_fails_instead_of_crash_looping(self):
        graph = _smoke()
        plan = FaultPlan(rules=(
            FaultRule(kind="crash", request_id="poison", times=None),))
        service = serve(
            _smoke(), ServeOptions(max_batch_size=2, max_wait_ms=0.0,
                                   faults=plan))
        poison = service.submit(InferenceRequest(
            inputs=_graph_inputs(graph, 0), request_id="poison"))
        with pytest.raises(ExecutionError, match="request 'poison' crashed "
                                                 "the worker"):
            poison.result(timeout=30.0)
        report = service.report()
        assert report.worker_restarts == 3  # initial + 2 rescues, then fail
        assert report.failed == 1

        # The service survives the poison and keeps serving.
        inputs = _graph_inputs(graph, seed=4)
        future = service.submit(InferenceRequest(inputs=inputs))
        _assert_matches_reference(
            graph, inputs, future.result(timeout=30.0).outputs)
        service.close()


# ---------------------------------------------------------------------------
# Close semantics, deadlines and backpressure under concurrent load
# ---------------------------------------------------------------------------

class TestCloseAndPressure:
    def test_close_is_idempotent_and_submit_after_close_is_typed(self):
        service = serve(_smoke(), max_wait_ms=0.0)
        service.close()
        service.close()  # no-op, not an error
        assert service.closed
        with pytest.raises(ServiceClosed, match="closed") as exc:
            service.submit(InferenceRequest(
                inputs=_graph_inputs(service.program.graph, 0),
                request_id="late"))
        assert exc.value.request_id == "late"
        # Nothing was enqueued for a dead worker to leak.
        assert service.queue_depth == 0

    def test_backpressure_under_concurrent_submitters(self):
        graph = _smoke()
        service = Service(
            compile_private(_smoke(), CompileOptions()),
            ServeOptions(max_batch_size=8, max_wait_ms=0.0, max_queue=3),
            _start=False)
        admitted, rejected, errors = [], [], []
        barrier = threading.Barrier(8)

        def client(seed):
            inputs = _graph_inputs(graph, seed)
            barrier.wait()
            try:
                admitted.append(service.submit(
                    InferenceRequest(inputs=inputs, request_id=seed)))
            except QueueFull as err:
                rejected.append(err)
            except BaseException as err:  # noqa: BLE001 - test harness
                errors.append(err)

        threads = [threading.Thread(target=client, args=(s,))
                   for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert not errors
        assert len(admitted) == 3  # exactly max_queue got in
        assert len(rejected) == 5
        assert all(err.retryable for err in rejected)  # backpressure retries
        assert all("queue is full" in str(err) for err in rejected)

        service._execute(service._next_batch())
        for future in admitted:
            assert future.result().outputs
        service.close()

    def test_deadline_misses_under_concurrent_load_are_attributed(self):
        graph = _smoke()
        service = Service(
            compile_private(_smoke(), CompileOptions()),
            ServeOptions(max_batch_size=8, max_wait_ms=0.0), _start=False)
        futures = {}
        lock = threading.Lock()

        def client(rid):
            future = service.submit(InferenceRequest(
                inputs=_graph_inputs(graph, 0), request_id=rid,
                deadline_ms=1.0))
            with lock:
                futures[rid] = future

        threads = [threading.Thread(target=client, args=(f"r{i}",))
                   for i in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        time.sleep(0.05)  # let every deadline lapse while queued
        service._execute(service._next_batch())

        for rid, future in futures.items():
            with pytest.raises(TimeoutError,
                               match=f"request '{rid}' missed its deadline"):
                future.result()
            assert future.exception().request_id == rid
        assert service.report().expired == 3
        service.close()


# ---------------------------------------------------------------------------
# Chaos mode: the CI premise
# ---------------------------------------------------------------------------

class TestChaos:
    def test_chaos_faults_are_absorbed_with_identical_outputs(self):
        # The chaos plan may only slow execution or degrade the backend;
        # outputs must stay byte-identical under any seed - exactly what
        # the CI chaos job (REPRO_FAULT_SEED over the tier-1 suite)
        # relies on.
        graph = _smoke()
        clean = {}
        for seed in (0, 1, 2):
            inputs = _graph_inputs(graph, seed)
            clean[seed] = (inputs, _reference(graph, inputs))
        for chaos_seed in (1, 20_240_428):
            model = compile_private(_smoke(), CompileOptions(
                backend="codegen", faults=FaultPlan.chaos(chaos_seed)))
            for seed, (inputs, ref) in clean.items():
                outputs = model.run(InferenceRequest(inputs=inputs)).outputs
                for key in ref:
                    assert np.array_equal(outputs[key], ref[key]), (
                        chaos_seed, seed, key)
            circuit_breaker().reset()

    def test_injected_crash_is_not_a_repro_error(self):
        # If InjectedCrash were a ReproError the scheduler would treat
        # it as a request failure instead of letting it kill the worker.
        assert not issubclass(InjectedCrash, ReproError)
