"""Tests for the compile-once/run-many Session/Engine layer."""

import numpy as np
import pytest

from repro.bench.harness import cell_cache_stats
from repro.core import PipelineStages
from repro.models import ALL_MODELS, SMOKE_CONFIGS as SMALL_CONFIGS, build
from repro.runtime import (
    Engine, SD8GEN2, Session, compile_session, execute, make_inputs,
)


def _session_and_reference(name):
    g = build(name, **SMALL_CONFIGS[name])
    session = compile_session(g, "Ours")
    inputs = make_inputs(g)
    return g, session, inputs


@pytest.mark.parametrize("name", sorted(SMALL_CONFIGS))
class TestEveryRegistryModel:
    """Compile-once/run-many equals direct execute() on the whole zoo."""

    def test_run_many_matches_reference(self, name):
        g, session, inputs = _session_and_reference(name)
        ref = execute(g, inputs)
        # byte-identical to executing the compiled graph directly
        compiled_ref = execute(
            session.graph,
            {k: v for k, v in inputs.items() if k in session.graph.tensors})
        out1 = session.run(inputs)
        out2 = session.run(inputs)
        assert list(out1) == list(ref)
        for key in ref:
            assert np.array_equal(out1[key], compiled_ref[key]), key
            assert np.array_equal(out1[key], out2[key]), key
            assert np.allclose(ref[key], out1[key], rtol=1e-4, atol=1e-5), key

    def test_second_run_reuses_pool_blocks(self, name):
        _, session, inputs = _session_and_reference(name)
        session.run(inputs)
        session.run(inputs)
        first, second = session.stats.runs
        assert second.pool.allocations < first.pool.allocations
        assert second.pool.reuses > 0
        # steady state: everything returned to the pool between requests
        assert second.pool.final_bytes == 0


class TestSessionAccounting:
    @pytest.fixture(scope="class")
    def vit_session(self):
        g = build("ViT", **SMALL_CONFIGS["ViT"])
        return g, compile_session(g, "Ours")

    def test_per_request_stats(self, vit_session):
        g, session = vit_session
        start = session.stats.requests
        session.run(session.make_inputs(seed=3))
        stats = session.stats.runs[-1]
        assert session.stats.requests == start + 1
        assert stats.wall_s > 0
        assert stats.est_latency_ms > 0
        assert stats.pool.total_allocated_bytes > 0
        assert len(stats.pool.timeline) == len(session.graph.topo_order())
        assert session.stats.mean_wall_s > 0

    def test_run_batch(self, vit_session):
        g, session = vit_session
        start = session.stats.requests
        batch = [make_inputs(g, seed=s) for s in range(3)]
        outs = session.run_batch(batch)
        assert len(outs) == 3
        assert session.stats.requests == start + 3
        # different seeds produce different outputs
        name = next(iter(outs[0]))
        assert not np.array_equal(outs[0][name], outs[1][name])

    def test_seeded_run_without_inputs(self, vit_session):
        _, session = vit_session
        a = session.run(seed=11)
        b = session.run(seed=11)
        for key in a:
            assert np.array_equal(a[key], b[key])

    def test_missing_inputs_rejected(self, vit_session):
        _, session = vit_session
        with pytest.raises(ValueError, match="missing graph inputs"):
            session.run({})

    def test_inputs_and_seed_together_rejected(self, vit_session):
        _, session = vit_session
        with pytest.raises(ValueError, match="not both"):
            session.run(session.make_inputs(), seed=3)

    def test_failed_run_does_not_corrupt_pool(self, vit_session):
        """A request that dies mid-graph must return its blocks: the pool
        is long-lived and shared by every later request."""
        _, session = vit_session
        inputs = session.make_inputs()
        bad = dict(inputs)
        name = next(iter(bad))
        bad[name] = bad[name][..., :-1]  # wrong shape
        requests_before = session.stats.requests
        live_before = session.pool.live_bytes
        with pytest.raises(Exception):
            session.run(bad)
        assert session.pool.live_bytes == live_before
        assert session.stats.requests == requests_before
        out = session.run(inputs)  # session still serves correctly
        assert out

    def test_graph_model_batch_rejected(self):
        g = build("ViT", **SMALL_CONFIGS["ViT"])
        with pytest.raises(ValueError, match="batch"):
            compile_session(g, "Ours", batch=2)

    def test_est_latency_matches_cell_report(self, vit_session):
        _, session = vit_session
        assert session.est_latency_ms == pytest.approx(
            session.report.latency_ms)


class TestInputValidation:
    """Malformed requests fail at admission with an error naming the
    tensor, never deep inside a kernel."""

    @pytest.fixture(scope="class")
    def session(self):
        g = build("ViT", **SMALL_CONFIGS["ViT"])
        return compile_session(g, "Ours")

    def test_wrong_shape_names_tensor(self, session):
        inputs = session.make_inputs()
        name = next(iter(inputs))
        inputs[name] = inputs[name][..., :-1]
        with pytest.raises(ValueError, match=f"input '{name}'.*shape"):
            session.run(inputs)

    def test_wrong_dtype_names_tensor(self, session):
        inputs = session.make_inputs()
        name = next(iter(inputs))
        inputs[name] = inputs[name].astype(np.float64)
        with pytest.raises(ValueError, match=f"input '{name}'.*dtype"):
            session.run(inputs)

    def test_rejection_happens_before_execution(self, session):
        inputs = session.make_inputs()
        name = next(iter(inputs))
        inputs[name] = inputs[name][..., :-1]
        requests = session.stats.requests
        live = session.pool.live_bytes
        with pytest.raises(ValueError):
            session.run(inputs)
        assert session.stats.requests == requests
        assert session.pool.live_bytes == live

    def test_extra_tensors_still_ignored(self, session):
        inputs = session.make_inputs()
        inputs["not_a_graph_tensor"] = np.zeros(3)
        out = session.run(inputs)
        assert out


class TestEngineLRU:
    def _stages(self, n):
        # distinct hashable configs -> distinct triples
        return PipelineStages(tuned_boost=1.1 + n / 100)

    def test_eviction_beyond_max_sessions(self):
        g = build("ViT", **SMALL_CONFIGS["ViT"])
        engine = Engine(max_sessions=2)
        a = engine.compile(g, stages=self._stages(0))
        engine.compile(g, stages=self._stages(1))
        engine.compile(g, stages=self._stages(2))
        assert engine.num_sessions == 2
        # a was least recently used: recompiling yields a fresh session
        assert engine.compile(g, stages=self._stages(0)) is not a

    def test_use_refreshes_recency(self):
        g = build("ViT", **SMALL_CONFIGS["ViT"])
        engine = Engine(max_sessions=2)
        a = engine.compile(g, stages=self._stages(0))
        b = engine.compile(g, stages=self._stages(1))
        assert engine.compile(g, stages=self._stages(0)) is a  # touch a
        engine.compile(g, stages=self._stages(2))  # evicts b, not a
        assert engine.compile(g, stages=self._stages(0)) is a
        assert engine.compile(g, stages=self._stages(1)) is not b

    def test_unbounded_by_default(self):
        g = build("ViT", **SMALL_CONFIGS["ViT"])
        engine = Engine()
        for n in range(4):
            engine.compile(g, stages=self._stages(n))
        assert engine.num_sessions == 4

    def test_max_sessions_validated(self):
        with pytest.raises(ValueError, match="max_sessions"):
            Engine(max_sessions=0)

    def test_evict_api(self):
        g = build("ViT", **SMALL_CONFIGS["ViT"])
        engine = Engine()
        session = engine.compile(g)
        assert engine.evict(g) is True
        assert engine.evict(g) is False  # already gone
        assert engine.num_sessions == 0
        assert engine.compile(g) is not session

    def test_clear(self):
        g = build("ViT", **SMALL_CONFIGS["ViT"])
        engine = Engine()
        engine.compile(g)
        engine.clear()
        assert engine.num_sessions == 0


class TestProgramPlumbing:
    def test_sessions_share_one_lowering(self):
        g = build("ViT", **SMALL_CONFIGS["ViT"])
        a = compile_session(g, "Ours")
        b = compile_session(g, "Ours")
        assert a.program is b.program  # program rides the compile cache

    def test_ours_program_comes_from_lower_pass(self):
        g = build("Swin", **SMALL_CONFIGS["Swin"])
        session = compile_session(g, "Ours")
        assert session._program is not None  # no lazy lowering needed
        assert session.program.graph is session.graph

    def test_baseline_framework_lowers_lazily(self):
        g = build("ResNext", **SMALL_CONFIGS["ResNext"])
        session = compile_session(g, "DNNF")
        assert session._program is None
        assert session.program.num_steps == len(session.graph.nodes)

    def test_unknown_backend_rejected(self):
        g = build("ViT", **SMALL_CONFIGS["ViT"])
        with pytest.raises(KeyError, match="unknown backend"):
            compile_session(g, "Ours", backend="tpu")

    def test_run_batch_single_backend_invocation(self, monkeypatch):
        g = build("ViT", **SMALL_CONFIGS["ViT"])
        session = compile_session(g, "Ours")
        calls = []
        original = session._backend.run_many

        def counting_run_many(program, values_list, pool):
            calls.append(len(values_list))
            return original(program, values_list, pool)

        monkeypatch.setattr(session._backend, "run_many", counting_run_many)
        session.run_batch([session.make_inputs(seed=s) for s in range(3)])
        # One backend invocation for the whole batch: the sequential
        # path passes all 3 value dicts at once, the stacked path passes
        # 1 concatenated dict through the batch-N variant.
        assert len(calls) == 1
        assert calls[0] in (1, 3)


class TestCompileOnce:
    def test_engine_returns_same_session(self):
        g = build("ViT", **SMALL_CONFIGS["ViT"])
        engine = Engine()
        a = engine.compile(g)
        b = engine.compile(g)
        assert a is b
        assert engine.num_sessions == 1
        assert engine.compile(g, stages=PipelineStages(lte=False)) is not a
        assert engine.num_sessions == 2

    def test_compile_reuses_cell_cache(self):
        g = build("Swin", **SMALL_CONFIGS["Swin"])
        compile_session(g, "Ours")
        before = cell_cache_stats()
        second = compile_session(g, "Ours")
        after = cell_cache_stats()
        assert after["misses"] == before["misses"]
        assert after["hits"] == before["hits"] + 1
        assert isinstance(second, Session)

    def test_sessions_have_independent_pools(self):
        g = build("ViT", **SMALL_CONFIGS["ViT"])
        a = compile_session(g, "Ours")
        b = compile_session(g, "Ours")
        inputs = make_inputs(g)
        a.run(inputs)
        b.run(inputs)
        # b's first run is cold even though a warmed its own pool
        assert b.stats.runs[0].pool.allocations > 0

    def test_unsupported_framework_raises(self):
        g = build("ViT", **SMALL_CONFIGS["ViT"])
        with pytest.raises(RuntimeError, match="cannot serve"):
            compile_session(g, "NCNN")

    def test_baseline_framework_sessions_execute(self):
        g = build("ResNext", **SMALL_CONFIGS["ResNext"])
        session = compile_session(g, "DNNF")
        inputs = make_inputs(g)
        ref = execute(g, inputs)
        out = session.run(inputs)
        for key in ref:
            assert np.allclose(ref[key], out[key], rtol=1e-4, atol=1e-5), key

    def test_registry_names_compile_directly(self):
        session = compile_session("ViT", "Ours", SD8GEN2)
        assert session.model == "ViT"
        assert session.graph.num_operators > 0
        assert "ViT" in ALL_MODELS
