"""Symbolic shapes: one compiled program serves any leading extent.

The core contract under test: a model compiled once with a symbolic
leading dim (``CompileOptions(signature=..., max_extent=N)``) serves
every extent in ``1..N`` **byte-identical** to a fresh concrete compile
at that extent, on both in-process backends - requests execute at their
exact runtime extent through per-bucket variants, never padded, never
stacked.  The property is exercised zoo-wide over randomized extents,
under chaos (codegen degradation, worker crashes), and guarded by
compile-count and shm-layout regressions.
"""

import numpy as np
import pytest

import repro
from repro.api import AdmissionError, CompileOptions, InvalidOptions
from repro.ir.symbolic import (
    OPEN_STOP, SYM, SymDim, concretize, is_placeholder, is_symbolic_shape,
)
from repro.models import build_smoke
from repro.models.registry import SMOKE_CONFIGS
from repro.runtime import FaultPlan, FaultRule, active_segments
from repro.runtime.batching import NotStackable, analyze, bucket, symbolize
from repro.runtime.codegen_backend import emission_count
from repro.runtime.parallel_backend import parallel_supported
from repro.runtime.session import _compile_session
from repro.runtime.shm import ShardLayout

NO_FAULTS = FaultPlan()  # explicit empty plan: overrides ambient chaos

MAX_EXTENT = 8
BACKENDS = ("numpy", "codegen")


def symbolic_signature(graph):
    """Every graph input with its leading dim replaced by a placeholder."""
    return {name: (None,) + tuple(graph.tensors[name].shape)[1:]
            for name in graph.inputs}


def stackability(name):
    session = _compile_session(build_smoke(name, batch=1), "Ours",
                               faults=NO_FAULTS)
    return analyze(session.program)


STACKABLE = [n for n in SMOKE_CONFIGS if stackability(n).stackable]
UNSTACKABLE = [n for n in SMOKE_CONFIGS if not stackability(n).stackable]


def sweep_extents(name, per_bucket=3):
    """Seeded random extents covering every bucket of ``1..MAX_EXTENT``.

    Deterministic per model (no salted ``hash``): the property suite
    re-runs the same shapes every time, but different models probe
    different extents inside each bucket.
    """
    rng = np.random.default_rng(
        sum(ord(c) for c in name) * 1_000_003 + 17)
    buckets = {}
    for extent in range(1, MAX_EXTENT + 1):
        buckets.setdefault(bucket(extent), []).append(extent)
    chosen = set()
    for members in buckets.values():
        take = min(per_bucket, len(members))
        chosen.update(int(e) for e in rng.choice(
            members, size=take, replace=False))
    return sorted(chosen)


def concrete_reference(name, extent, seed=None):
    """(admitted values, outputs) of a fresh concrete compile at extent."""
    session = _compile_session(build_smoke(name, batch=extent), "Ours",
                               faults=NO_FAULTS)
    values = session._admit(session.make_inputs(seed=extent if seed is None
                                                else seed))
    outputs = session.execute_values([dict(values)])[0][0][0]
    return values, outputs


def sharded_case(session, name, extent):
    """(admitted request, reference outputs) for the *pool* path.

    The request carries only graph inputs (param arrays from another
    session would read as per-request overrides and make the pool
    decline the shard); the reference is a fresh concrete compile fed
    the symbolic session's own admitted values.
    """
    values, _outputs = concrete_reference(name, extent)
    inputs = {key: values[key] for key in session.graph.inputs}
    admitted = session._admit(inputs)
    concrete = _compile_session(build_smoke(name, batch=extent), "Ours",
                                faults=NO_FAULTS)
    want = concrete.execute_values([concrete._admit(admitted)])[0][0][0]
    return admitted, want


def assert_outputs_identical(got, want, context=""):
    assert set(got) == set(want), context
    for key in want:
        assert got[key].shape == want[key].shape, f"{context} {key}"
        assert got[key].tobytes() == want[key].tobytes(), f"{context} {key}"


# ---------------------------------------------------------------------------
# the symbolic dim itself
# ---------------------------------------------------------------------------


class TestSymDim:
    def test_singleton_and_repr(self):
        assert SymDim() is SYM
        assert repr(SYM) == "?"
        assert str((SYM, 8, 32)) == "(?, 8, 32)"

    def test_pickle_preserves_identity(self):
        import pickle
        assert pickle.loads(pickle.dumps(SYM)) is SYM

    def test_placeholder_and_shape_helpers(self):
        assert is_placeholder(None) and is_placeholder(SYM)
        assert not is_placeholder(4)
        assert is_symbolic_shape((SYM, 8))
        assert not is_symbolic_shape((4, 8)) and not is_symbolic_shape(())
        assert concretize((SYM, 8, 32), 5) == (5, 8, 32)
        assert concretize((4, 8), 5) == (4, 8)

    def test_open_stop_clamps_like_basic_slicing(self):
        x = np.arange(24).reshape(6, 4)
        assert np.array_equal(x[0:OPEN_STOP:1], x)


# ---------------------------------------------------------------------------
# satellite 1: zoo-wide parity properties
# ---------------------------------------------------------------------------


class TestZooParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("name", STACKABLE)
    def test_symbolic_serves_randomized_extents_byte_identical(
            self, name, backend):
        graph = build_smoke(name, batch=1)
        session = _compile_session(
            build_smoke(name, batch=1), "Ours", backend=backend,
            faults=NO_FAULTS, signature=symbolic_signature(graph),
            max_extent=MAX_EXTENT)
        for extent in sweep_extents(name):
            values, want = concrete_reference(name, extent)
            admitted = session._admit(values)
            results, _backend, _batched = session.execute_values([admitted])
            assert_outputs_identical(
                results[0][0], want, f"{name} {backend} S={extent}")

    @pytest.mark.parametrize("name", UNSTACKABLE)
    def test_non_symbolizable_models_refuse_with_recorded_reason(self, name):
        graph = build_smoke(name, batch=1)
        reason = stackability(name).reason
        assert reason  # the analysis records *why*
        with pytest.raises(InvalidOptions, match="symbolic leading extent"):
            _compile_session(
                build_smoke(name, batch=1), "Ours", faults=NO_FAULTS,
                signature=symbolic_signature(graph), max_extent=MAX_EXTENT)
        try:
            _compile_session(
                build_smoke(name, batch=1), "Ours", faults=NO_FAULTS,
                signature=symbolic_signature(graph), max_extent=MAX_EXTENT)
        except InvalidOptions as err:
            assert reason in str(err)

    def test_mixed_extent_batch_scatters_results_in_order(self):
        graph = build_smoke("Pythia", batch=1)
        session = _compile_session(
            build_smoke("Pythia", batch=1), "Ours", faults=NO_FAULTS,
            signature=symbolic_signature(graph), max_extent=MAX_EXTENT)
        extents = [3, 1, 8, 5, 1, 2]
        batch, expected = [], []
        for extent in extents:
            values, want = concrete_reference("Pythia", extent)
            batch.append(session._admit(values))
            expected.append(want)
        results, _backend, _batched = session.execute_values(batch)
        for extent, (got, _report, _wall), want in zip(
                extents, results, expected):
            assert_outputs_identical(got, want, f"mixed S={extent}")

    def test_front_door_one_compile_three_sequence_lengths(self):
        graph = build_smoke("Pythia", batch=1)
        model = repro.compile(graph, CompileOptions(
            faults=NO_FAULTS, signature=symbolic_signature(graph),
            max_extent=MAX_EXTENT))
        for extent in (1, 3, 8):
            request_values, _ = concrete_reference("Pythia", extent)
            inputs = {name: request_values[name] for name in graph.inputs}
            response = model.run(repro.InferenceRequest(inputs=inputs))
            # Reference: a fresh concrete compile at this extent, fed
            # the symbolic session's own parameter values (the two
            # graphs materialize different params from their seeds).
            full = model.session._admit(inputs)
            concrete = _compile_session(
                build_smoke("Pythia", batch=extent), "Ours",
                faults=NO_FAULTS)
            want = concrete.execute_values(
                [concrete._admit(full)])[0][0][0]
            assert_outputs_identical(response.outputs, want, f"S={extent}")

    def test_symbolize_factor_one_serves_below_base_extents(self):
        base = _compile_session(build_smoke("ViT", batch=4), "Ours",
                                faults=NO_FAULTS)
        variant = symbolize(base.program, 1)
        assert variant.symbolic_extent == 4  # the bucket's max bound
        graph = build_smoke("ViT", batch=4)
        sym_session = _compile_session(
            build_smoke("ViT", batch=4), "Ours", faults=NO_FAULTS,
            signature=symbolic_signature(graph), max_extent=8)
        values, want = concrete_reference("ViT", 2)
        got = sym_session.execute_values(
            [sym_session._admit(values)])[0][0][0]
        assert_outputs_identical(got, want, "below-base extent")

    def test_symbolize_refuses_unstackable_programs(self):
        session = _compile_session(build_smoke("Swin", batch=1), "Ours",
                                   faults=NO_FAULTS)
        with pytest.raises(NotStackable):
            symbolize(session.program, 2)


# ---------------------------------------------------------------------------
# satellite 2: reliability under chaos
# ---------------------------------------------------------------------------


class TestSymbolicReliability:
    def test_codegen_degradation_preserves_parity_at_odd_extents(self):
        graph = build_smoke("Pythia", batch=1)
        plan = FaultPlan(rules=(FaultRule(kind="compile", times=None),))
        session = _compile_session(
            build_smoke("Pythia", batch=1), "Ours", backend="codegen",
            faults=plan, signature=symbolic_signature(graph),
            max_extent=MAX_EXTENT)
        for extent in (3, 5, 7):
            values, want = concrete_reference("Pythia", extent)
            results, backend, _batched = session.execute_values(
                [session._admit(values)])
            assert backend == "numpy"  # degraded, not failed
            assert_outputs_identical(results[0][0], want, f"S={extent}")

    @pytest.mark.skipif(not parallel_supported(),
                        reason="fork start method unavailable")
    def test_worker_crash_redispatch_preserves_parity(self):
        graph = build_smoke("Pythia", batch=1)
        plan = FaultPlan(rules=(
            FaultRule(kind="worker_crash", probability=1.0, times=1),))
        session = _compile_session(
            build_smoke("Pythia", batch=1), "Ours", backend="parallel",
            workers=2, faults=plan,
            signature=symbolic_signature(graph), max_extent=MAX_EXTENT)
        try:
            admitted, want = sharded_case(session, "Pythia", 5)
            batch = [dict(admitted) for _ in range(4)]
            results, _backend, _batched = session.execute_values(batch)
            for got, _report, _wall in results:
                assert_outputs_identical(got, want, "crash redispatch")
            assert session.parallel_restarts == 1
        finally:
            session.close()
        assert not active_segments()

    @pytest.mark.parametrize("seed", [7, 20_240_428])
    def test_chaos_seeds_preserve_mixed_extent_isolation(self, seed):
        graph = build_smoke("Pythia", batch=1)
        session = _compile_session(
            build_smoke("Pythia", batch=1), "Ours", backend="codegen",
            faults=FaultPlan.chaos(seed),
            signature=symbolic_signature(graph), max_extent=MAX_EXTENT)
        extents = [5, 1, 3, 8]
        batch, expected = [], []
        for extent in extents:
            values, want = concrete_reference("Pythia", extent)
            batch.append(session._admit(values))
            expected.append(want)
        for _ in range(3):  # repeated bursts so chaos rules fire
            results, _backend, _batched = session.execute_values(
                [dict(v) for v in batch])
            for extent, (got, _r, _w), want in zip(
                    extents, results, expected):
                assert_outputs_identical(got, want, f"chaos S={extent}")


# ---------------------------------------------------------------------------
# satellite 3: admission errors
# ---------------------------------------------------------------------------


class TestSymbolicAdmission:
    def model(self, **overrides):
        graph = build_smoke("Pythia", batch=1)
        return graph, repro.compile(graph, CompileOptions(
            faults=NO_FAULTS, signature=symbolic_signature(graph),
            max_extent=4, **overrides))

    def test_out_of_bucket_extent_names_tensor_and_range(self):
        graph, model = self.model()
        name = next(iter(graph.inputs))
        spec = graph.tensors[name]
        bad = np.zeros((9,) + tuple(spec.shape)[1:],
                       dtype=spec.dtype.numpy_dtype)
        with pytest.raises(AdmissionError) as err:
            model.run(repro.InferenceRequest(inputs={name: bad}))
        message = str(err.value)
        assert name in message
        assert "1..4" in message and "extent 9" in message

    def test_rank_mismatch_names_tensor_and_symbolic_spec(self):
        graph, model = self.model()
        name = next(iter(graph.inputs))
        spec = graph.tensors[name]
        bad = np.zeros((2,) + tuple(spec.shape)[1:] + (3,),
                       dtype=spec.dtype.numpy_dtype)
        with pytest.raises(AdmissionError) as err:
            model.run(repro.InferenceRequest(inputs={name: bad}))
        message = str(err.value)
        assert name in message and "(?" in message and "1..4" in message

    def test_cross_input_extent_disagreement_names_both_tensors(self):
        graph = build_smoke("SD-UNet", batch=1)
        assert len(graph.inputs) >= 2  # the multi-input smoke model
        session = _compile_session(
            build_smoke("SD-UNet", batch=1), "Ours", faults=NO_FAULTS,
            signature=symbolic_signature(graph), max_extent=4)
        values = session.make_inputs(seed=0)
        names = sorted(graph.inputs)
        first = names[0]
        grown = {}
        for name, value in values.items():
            if name == first:
                grown[name] = np.resize(value, (3,) + value.shape[1:])
            else:
                grown[name] = value
        with pytest.raises(AdmissionError) as err:
            session._admit(grown)
        message = str(err.value)
        assert "disagrees" in message and "share one symbolic extent" in message

    def test_signature_naming_unknown_input_refused(self):
        with pytest.raises(InvalidOptions, match="not a graph input"):
            _compile_session(
                build_smoke("Pythia", batch=1), "Ours", faults=NO_FAULTS,
                signature={"no_such_tensor": (None, 8)}, max_extent=4)

    def test_signature_tail_mismatch_refused(self):
        graph = build_smoke("Pythia", batch=1)
        name = next(iter(graph.inputs))
        with pytest.raises(InvalidOptions, match="compiled graph expects"):
            _compile_session(
                build_smoke("Pythia", batch=1), "Ours", faults=NO_FAULTS,
                signature={name: (None, 999)}, max_extent=4)

    def test_options_validation(self):
        with pytest.raises(InvalidOptions, match="lead with a symbolic"):
            CompileOptions(signature={"x": (4, 8)}, max_extent=4)
        with pytest.raises(InvalidOptions, match="only the leading"):
            CompileOptions(signature={"x": (None, None)}, max_extent=4)
        with pytest.raises(InvalidOptions, match="max_extent"):
            CompileOptions(signature={"x": (None, 8)})
        with pytest.raises(InvalidOptions, match="requires a symbolic"):
            CompileOptions(max_extent=4)

    def test_serving_signature_spells_sym(self):
        _graph, model = self.model()
        for _name, (shape, _dtype) in model._signature.items():
            assert shape[0] is SYM


# ---------------------------------------------------------------------------
# satellite 4: compile-count regression
# ---------------------------------------------------------------------------


class TestCompileCount:
    def test_shape_sweep_compiles_once_per_bucket(self):
        graph = build_smoke("Pythia", batch=1)
        session = _compile_session(
            build_smoke("Pythia", batch=1), "Ours", backend="codegen",
            faults=NO_FAULTS, signature=symbolic_signature(graph),
            max_extent=MAX_EXTENT)
        references = {
            extent: concrete_reference("Pythia", extent)
            for extent in range(1, MAX_EXTENT + 1)}
        before = emission_count()
        for _round in range(3):
            for extent in range(1, MAX_EXTENT + 1):
                values, want = references[extent]
                results, _b, _s = session.execute_values(
                    [session._admit(values)])
                assert_outputs_identical(results[0][0], want, f"S={extent}")
        emitted = emission_count() - before
        variants = session.program.backend_cache.get("batching.symbolic", {})
        # Base extent (1) routes the concrete path; every other extent
        # lands in the power-of-two bucket covering it.
        expected_buckets = {bucket(extent)
                            for extent in range(2, MAX_EXTENT + 1)}
        assert set(variants) == expected_buckets
        # One lowering + one codegen emission per bucket, plus at most
        # one for the base program itself - never per shape, never per
        # round.
        assert emitted <= len(expected_buckets) + 1

    def test_second_sweep_emits_nothing_new(self):
        graph = build_smoke("ViT", batch=1)
        session = _compile_session(
            build_smoke("ViT", batch=1), "Ours", backend="codegen",
            faults=NO_FAULTS, signature=symbolic_signature(graph),
            max_extent=MAX_EXTENT)
        values = {extent: concrete_reference("ViT", extent)[0]
                  for extent in (2, 3, 5, 8)}
        for extent, admitted in values.items():
            session.execute_values([session._admit(admitted)])
        before = emission_count()
        variants_before = dict(
            session.program.backend_cache["batching.symbolic"])
        for extent, admitted in values.items():
            session.execute_values([session._admit(admitted)])
        assert emission_count() == before
        assert dict(session.program.backend_cache["batching.symbolic"]) \
            == variants_before


# ---------------------------------------------------------------------------
# tentpole plumbing: per-bucket slot plans, scratch, shm layouts
# ---------------------------------------------------------------------------


class TestBucketedPlans:
    def test_variant_slot_plan_sized_at_bucket_bound(self):
        session = _compile_session(build_smoke("Pythia", batch=1), "Ours",
                                   faults=NO_FAULTS)
        small = symbolize(session.program, 2)
        large = symbolize(session.program, 8)
        assert small.symbolic_extent == 2
        assert large.symbolic_extent == 8
        assert large.slot_plan.peak_bytes > small.slot_plan.peak_bytes

    def test_per_bucket_pools_warm_lazily(self):
        graph = build_smoke("Pythia", batch=1)
        session = _compile_session(
            build_smoke("Pythia", batch=1), "Ours", faults=NO_FAULTS,
            signature=symbolic_signature(graph), max_extent=MAX_EXTENT)
        assert session._symbolic_pools == {}
        values, _want = concrete_reference("Pythia", 3)
        session.execute_values([session._admit(values)])
        assert set(session._symbolic_pools) == {bucket(3)}

    def test_shard_layout_per_extent(self):
        session = _compile_session(build_smoke("Pythia", batch=1), "Ours",
                                   faults=NO_FAULTS)
        program = session.program
        base = ShardLayout(program, capacity=4)
        at5 = ShardLayout(program, capacity=4, extent=5)
        for slot in at5.inputs:
            assert slot.shape[0] == 5
        for base_slot, slot in zip(base.outputs, at5.outputs):
            if base_slot.shape != slot.shape:  # batched output: scaled
                assert slot.shape[0] == base_slot.shape[0] * 5
        assert at5.segment_bytes > base.segment_bytes

    def test_shard_layout_refuses_unstackable_programs(self):
        session = _compile_session(build_smoke("Swin", batch=1), "Ours",
                                   faults=NO_FAULTS)
        with pytest.raises(ValueError, match="batch-scalable"):
            ShardLayout(session.program, capacity=4, extent=5)

    @pytest.mark.skipif(not parallel_supported(),
                        reason="fork start method unavailable")
    def test_parallel_uniform_extent_shards_and_cleans_up(self):
        graph = build_smoke("Pythia", batch=1)
        session = _compile_session(
            build_smoke("Pythia", batch=1), "Ours", backend="parallel",
            workers=2, faults=NO_FAULTS,
            signature=symbolic_signature(graph), max_extent=MAX_EXTENT)
        try:
            admitted, want = sharded_case(session, "Pythia", 6)
            batch = [dict(admitted) for _ in range(4)]
            results, _backend, _batched = session.execute_values(batch)
            for got, _report, _wall in results:
                assert_outputs_identical(got, want, "parallel S=6")
        finally:
            session.close()
        assert not active_segments()
