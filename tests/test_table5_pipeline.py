"""Integration: the pipeline's behaviour on two-operator graphs matches
Table 5's prescribed action for every producer-consumer quadrant pair.

For each pair we build a minimal graph with a first operator of the row
quadrant feeding a second operator of the column quadrant, run the
SmartMem pipeline, and check the outcome: Fixed-output operators are
eliminated, Variable pairs fuse or stay, and semantics always hold.
"""

import pytest

from repro.core import Action, action_for, smartmem_optimize
from repro.ir import GraphBuilder, Quadrant, validate
from repro.runtime import outputs_equal


def make_pair(first_q: Quadrant, second_q: Quadrant):
    """A graph `input -> first -> second -> relu-out` with representative
    operators for each quadrant.  Returns (graph, first name, second name).

    The trailing relu gives eliminated transforms a consumer to carry
    their views, matching how they appear inside real models.
    """
    b = GraphBuilder(f"{first_q.name}_{second_q.name}")
    x = b.input("x", (4, 6, 8))

    def emit(quadrant: Quadrant, inp: str) -> tuple[str, str]:
        shape = b.shape(inp)
        if quadrant is Quadrant.ILD_VARIABLE:
            out = b.softmax(inp, axis=-1)
        elif quadrant is Quadrant.ILI_VARIABLE:
            out = b.relu(inp)
        elif quadrant is Quadrant.ILD_FIXED:
            perm = tuple(reversed(range(len(shape))))
            out = b.transpose(inp, perm)
        else:  # ILI_FIXED
            out = b.slice_axis(inp, 0, 0, max(1, shape[0] - 1))
        return out, b.graph.producer(out).op_type

    mid, first_op = emit(first_q, x)
    out, second_op = emit(second_q, mid)
    b.output(b.sigmoid(out))
    return b.finish(), first_op, second_op


ALL_PAIRS = [(f, s) for f in Quadrant for s in Quadrant]


@pytest.mark.parametrize("first_q,second_q", ALL_PAIRS,
                         ids=[f"{f.name}->{s.name}" for f, s in ALL_PAIRS])
def test_pipeline_implements_table5(first_q, second_q):
    graph, first_op, second_op = make_pair(first_q, second_q)
    validate(graph)
    action = action_for(first_q, second_q)
    result = smartmem_optimize(graph)
    validate(result.graph)
    remaining = result.graph.count_op_types()

    fixed_ops = {"transpose", "slice"}
    if action is Action.ELIMINATE_BOTH:
        # both operators were Fixed relayouts: neither survives
        assert not (set(remaining) & fixed_ops)
    elif action is Action.ELIMINATE_SECOND:
        assert second_op in fixed_ops
        assert remaining.get(second_op, 0) == 0
    elif action is Action.ELIMINATE_FIRST:
        assert first_op in fixed_ops
        assert remaining.get(first_op, 0) == 0
    elif action is Action.TRY_FUSE:
        # at least one pair member is ILI&Variable: the pipeline fuses the
        # chain into fewer kernels than source operators
        assert result.operator_count < len(graph.nodes)
    else:  # KEEP_BOTH: two ILD&Variable compute ops both survive
        assert remaining.get("softmax", 0) == 2

    # the universal invariant
    assert outputs_equal(graph, result.graph)


@pytest.mark.parametrize("first_q,second_q", ALL_PAIRS,
                         ids=[f"{f.name}->{s.name}" for f, s in ALL_PAIRS])
def test_no_fixed_output_op_survives(first_q, second_q):
    """Table 5's summary property: after the pipeline, every surviving
    operator has a Variable output (Sec 3.2.2: 'all preserved operators
    are ILD & Variable ... all operators in other types are fused into
    ILD & Variable eventually')."""
    graph, _, _ = make_pair(first_q, second_q)
    result = smartmem_optimize(graph)
    for node in result.graph.iter_nodes():
        assert node.opdef.quadrant.output_variable, node.op_type
