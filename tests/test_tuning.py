"""Tests for the genetic-algorithm auto-tuner (repro.tuning)."""

import itertools

import pytest

from repro.models import build
from repro.tuning import (
    GAParams, KernelConfig, KernelShape, fitness, kernel_shapes, run_ga,
    tune_graph, tune_kernel,
)


class TestConfigSpace:
    def test_defaults_valid(self):
        KernelConfig()

    def test_invalid_workgroup(self):
        with pytest.raises(ValueError):
            KernelConfig(workgroup_x=7)

    def test_invalid_vector(self):
        with pytest.raises(ValueError):
            KernelConfig(vector_width=3)

    def test_gene_roundtrip(self):
        config = KernelConfig(workgroup_x=32, workgroup_y=2, tile_m=8,
                              tile_n=2, unroll=2, vector_width=2)
        assert KernelConfig.from_genes(config.as_genes()) == config

    def test_fitness_in_unit_interval(self):
        shape = KernelShape(m=256, n=256, k=64)
        for genes in itertools.islice(
                itertools.product(*(range(n) for n in KernelConfig.gene_space())),
                0, 2000, 37):
            f = fitness(KernelConfig.from_genes(genes), shape)
            assert 0 < f <= 1.0

    def test_oversized_workgroup_penalized(self):
        shape = KernelShape(m=256, n=256, k=64, max_threads=128)
        big = KernelConfig(workgroup_x=256, workgroup_y=1)
        assert fitness(big, shape) < 1e-5

    def test_vector_match_preferred(self):
        shape = KernelShape(m=256, n=256, k=64, simd_width=4)
        vec4 = KernelConfig(vector_width=4)
        vec1 = KernelConfig(vector_width=1)
        assert fitness(vec4, shape) > fitness(vec1, shape)


class TestGA:
    def fitness_fn(self, genes):
        # maximize sum of genes: optimum is the box corner
        return sum(genes) / 100.0

    def test_deterministic(self):
        space = (5, 5, 5)
        a = run_ga(space, self.fitness_fn, GAParams(seed=3))
        b = run_ga(space, self.fitness_fn, GAParams(seed=3))
        assert a.best == b.best
        assert a.history == b.history

    def test_finds_corner_optimum(self):
        space = (6, 6, 6, 6)
        result = run_ga(space, self.fitness_fn,
                        GAParams(population=24, generations=30, seed=0))
        assert result.best == (5, 5, 5, 5)

    def test_history_monotone_nondecreasing(self):
        result = run_ga((8, 8), self.fitness_fn, GAParams(seed=1))
        assert all(b >= a for a, b in zip(result.history, result.history[1:]))

    def test_matches_exhaustive_on_small_space(self):
        space = (4, 4)

        def bumpy(genes):
            return 1.0 / (1 + (genes[0] - 2) ** 2 + (genes[1] - 1) ** 2)

        best_exhaustive = max(
            (bumpy(g), g) for g in itertools.product(range(4), range(4)))
        result = run_ga(space, bumpy, GAParams(population=16, generations=20))
        assert result.best_fitness == pytest.approx(best_exhaustive[0])

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            run_ga((), lambda g: 0.0)


class TestTuner:
    def test_tune_kernel_beats_default(self):
        shape = KernelShape(m=3136, n=96, k=288)
        tuned = tune_kernel(shape)
        assert tuned.efficiency >= fitness(KernelConfig(), shape)

    def test_kernel_shapes_extracted(self):
        g = build("ViT", image=32, dim=24, depth=1, heads=2, patch=16)
        shapes = kernel_shapes(g)
        assert shapes
        assert all(s.m > 0 and s.n > 0 and s.k > 0 for s in shapes)

    def test_shapes_deduplicated(self):
        g = build("ViT", image=32, dim=24, depth=2, heads=2, patch=16)
        shapes = kernel_shapes(g, limit=100)
        keys = [(s.m, s.n, s.k) for s in shapes]
        assert len(keys) == len(set(keys))

    def test_tune_graph_extra_efficiency_range(self):
        g = build("ViT", image=32, dim=24, depth=1, heads=2, patch=16)
        report = tune_graph(g, GAParams(population=12, generations=8))
        boost = report.extra_efficiency()
        assert 1.0 <= boost <= 1.25

    def test_empty_graph_neutral(self):
        from repro.ir import GraphBuilder
        b = GraphBuilder()
        x = b.input("x", (4,))
        b.output(b.relu(x))
        report = tune_graph(b.finish())
        assert report.extra_efficiency() == 1.0

    def test_stage_config_produces_pass_config(self):
        """The tuner as a pass-config producer: a PipelineStages whose
        tuned_boost is measured, consumable by the pipeline's tuning pass."""
        from repro.core import PipelineStages, smartmem_optimize
        from repro.tuning import stage_config

        g = build("ViT", image=32, dim=24, depth=1, heads=2, patch=16)
        stages = stage_config(g, GAParams(population=12, generations=8))
        assert isinstance(stages, PipelineStages)
        assert 1.0 <= stages.tuned_boost <= 1.25
        base = stage_config(g, GAParams(population=12, generations=8),
                            base=PipelineStages(lte=False))
        assert base.lte is False  # other knobs pass through
        result = smartmem_optimize(g, stages)
        assert result.extra_efficiency == pytest.approx(stages.tuned_boost)
        assert result.cost_config().extra_efficiency == pytest.approx(
            stages.tuned_boost)
