"""Tests for the verification module and the library CLI."""

import pytest

from repro.__main__ import main as cli_main
from repro.core import smartmem_optimize
from repro.runtime.verify import verify_equivalence


class TestVerify:
    def test_pass_on_identical(self, attention_graph):
        result = smartmem_optimize(attention_graph)
        report = verify_equivalence(attention_graph, result.graph)
        assert report.passed
        assert "PASS" in report.summary()
        assert report.worst_abs_error < 1e-3

    def test_fail_on_divergence(self, linear_graph):
        broken = linear_graph.clone()
        node = next(n for n in broken.iter_nodes() if n.op_type == "unary")
        node.attrs["func"] = "sigmoid"
        report = verify_equivalence(linear_graph, broken)
        assert not report.passed
        assert "FAIL" in report.summary()
        assert any(not c.matches for c in report.checks)

    def test_multiple_seeds_checked(self, linear_graph):
        report = verify_equivalence(linear_graph, linear_graph.clone(),
                                    seeds=(0, 1, 2))
        assert report.seeds == (0, 1, 2)
        assert report.passed

    def test_every_output_reported(self, multi_consumer_graph):
        result = smartmem_optimize(multi_consumer_graph)
        report = verify_equivalence(multi_consumer_graph, result.graph)
        assert len(report.checks) == len(multi_consumer_graph.outputs)


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "Swin" in out
        assert "tesla-v100" in out

    def test_no_model_lists(self, capsys):
        assert cli_main([]) == 0
        assert "models:" in capsys.readouterr().out

    def test_optimize_small_model(self, capsys):
        assert cli_main(["ResNext"]) == 0
        out = capsys.readouterr().out
        assert "SmartMem:" in out
        assert "GMACS" in out

    def test_compare_flag(self, capsys):
        assert cli_main(["ResNext", "--compare"]) == 0
        out = capsys.readouterr().out
        for fw in ("MNN", "NCNN", "DNNF"):
            assert fw in out

    def test_save_artifact(self, tmp_path, capsys):
        path = tmp_path / "mod.json"
        assert cli_main(["ResNext", "--save", str(path)]) == 0
        from repro.runtime.artifact import Artifact
        artifact = Artifact.load(path)
        assert artifact.metadata["model"] == "ResNext"

    def test_device_selection(self, capsys):
        assert cli_main(["ResNext", "--device", "tesla-v100"]) == 0
        assert "tesla-v100" in capsys.readouterr().out

    def test_unknown_model_errors(self):
        with pytest.raises(KeyError):
            cli_main(["NotAModel"])
