"""Tests for ViewChain / ViewStep (repro.ir.view)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ir.view import (
    ViewChain, ViewStep, lower_depth_to_space, lower_space_to_depth,
)


class TestViewStep:
    def test_reshape_shape(self):
        assert ViewStep("reshape", (6, 4)).output_shape((2, 3, 4)) == (6, 4)

    def test_reshape_size_mismatch(self):
        with pytest.raises(ValueError):
            ViewStep("reshape", (5, 5)).output_shape((2, 3, 4))

    def test_transpose_shape(self):
        assert ViewStep("transpose", (2, 0, 1)).output_shape((2, 3, 4)) == (4, 2, 3)

    def test_transpose_invalid_perm(self):
        with pytest.raises(ValueError):
            ViewStep("transpose", (0, 0, 1)).output_shape((2, 3, 4))

    def test_slice_shape(self):
        step = ViewStep("slice", ((0, 2, 1), (1, 3, 2)))
        assert step.output_shape((4, 4)) == (2, 1)

    def test_slice_invalid(self):
        with pytest.raises(ValueError):
            ViewStep("slice", ((2, 1, 1),)).output_shape((4,))

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            ViewStep("rotate", (1,))

    def test_apply_matches_numpy(self):
        x = np.arange(24).reshape(2, 3, 4)
        assert np.array_equal(ViewStep("transpose", (1, 0, 2)).apply(x),
                              x.transpose(1, 0, 2))
        assert np.array_equal(ViewStep("reshape", (6, 4)).apply(x),
                              x.reshape(6, 4))


class TestViewChain:
    def test_identity(self):
        chain = ViewChain.identity((2, 3))
        assert chain.is_identity
        assert chain.out_shape == (2, 3)

    def test_composition_shapes(self):
        chain = (ViewChain.identity((2, 3, 4))
                 .then_reshape((6, 4))
                 .then_transpose((1, 0)))
        assert chain.out_shape == (4, 6)

    def test_apply(self):
        x = np.arange(24).reshape(2, 3, 4)
        chain = (ViewChain.identity((2, 3, 4))
                 .then_reshape((6, 4)).then_transpose((1, 0)))
        assert np.array_equal(chain.apply(x), x.reshape(6, 4).T)

    def test_apply_wrong_shape(self):
        with pytest.raises(ValueError):
            ViewChain.identity((2, 3)).apply(np.zeros((3, 2)))

    def test_concat(self):
        a = ViewChain.identity((2, 6)).then_reshape((12,))
        c = a.concat(ViewChain.identity((12,)).then_reshape((3, 4)))
        assert c.out_shape == (3, 4)

    def test_concat_shape_mismatch(self):
        a = ViewChain.identity((2, 6))
        with pytest.raises(ValueError):
            a.concat(ViewChain.identity((3, 4)))

    def test_slice_step(self):
        x = np.arange(16).reshape(4, 4)
        chain = ViewChain.identity((4, 4)).then_slice(((1, 4, 2), (0, 4, 1)))
        assert np.array_equal(chain.apply(x), x[1:4:2, :])

    def test_json_roundtrip(self):
        chain = (ViewChain.identity((2, 3, 4)).then_transpose((2, 1, 0))
                 .then_reshape((12, 2)).then_slice(((0, 6, 1), (0, 2, 1))))
        restored = ViewChain.from_json(chain.to_json())
        assert restored == chain


class TestBlockLowering:
    def test_depth_to_space_matches_kernel(self):
        from repro.runtime.kernels import get_kernel
        x = np.arange(1 * 8 * 3 * 3, dtype=np.float32).reshape(1, 8, 3, 3)
        chain = lower_depth_to_space((1, 8, 3, 3), 2)
        expected = get_kernel("depth_to_space")([x], {"block": 2})
        assert np.array_equal(chain.apply(x), expected)

    def test_space_to_depth_matches_kernel(self):
        from repro.runtime.kernels import get_kernel
        x = np.arange(1 * 2 * 4 * 6, dtype=np.float32).reshape(1, 2, 4, 6)
        chain = lower_space_to_depth((1, 2, 4, 6), 2)
        expected = get_kernel("space_to_depth")([x], {"block": 2})
        assert np.array_equal(chain.apply(x), expected)

    def test_d2s_s2d_inverse(self):
        x = np.arange(1 * 8 * 4 * 4).reshape(1, 8, 4, 4)
        d2s = lower_depth_to_space((1, 8, 4, 4), 2)
        s2d = lower_space_to_depth(d2s.out_shape, 2)
        assert np.array_equal(d2s.concat(s2d).apply(x), x)


@st.composite
def random_chain(draw):
    """A random shape plus a random reshape/transpose/slice chain on it."""
    import math
    shape = tuple(draw(st.lists(st.sampled_from([1, 2, 3, 4, 6]),
                                min_size=2, max_size=4)))
    chain = ViewChain.identity(shape)
    for _ in range(draw(st.integers(1, 4))):
        kind = draw(st.sampled_from(["reshape", "transpose", "slice"]))
        cur = chain.out_shape
        if kind == "transpose":
            perm = tuple(draw(st.permutations(range(len(cur)))))
            chain = chain.then_transpose(perm)
        elif kind == "reshape":
            total = math.prod(cur)
            dims = []
            rem = total
            for _ in range(draw(st.integers(1, 2))):
                factors = [f for f in range(1, rem + 1) if rem % f == 0]
                f = draw(st.sampled_from(factors))
                dims.append(f)
                rem //= f
            dims.append(rem)
            chain = chain.then_reshape(tuple(dims))
        else:
            triples = []
            for d in cur:
                start = draw(st.integers(0, d - 1))
                stop = draw(st.integers(start + 1, d))
                triples.append((start, stop, draw(st.sampled_from([1, 2]))))
            chain = chain.then_slice(tuple(triples))
    return chain


@given(random_chain())
@settings(max_examples=60, deadline=None)
def test_chain_apply_matches_step_by_step(chain):
    """Applying a chain equals applying each step in sequence."""
    x = np.arange(np.prod(chain.in_shape)).reshape(chain.in_shape)
    stepwise = x
    for step in chain.steps:
        stepwise = step.apply(stepwise)
    assert np.array_equal(chain.apply(x), stepwise)
    assert tuple(stepwise.shape) == chain.out_shape
